"""The subscriber hosting broker (Section 4).

The SHB hosts durable subscribers.  Per pubend it runs:

* one **consolidated stream** for all connected non-catchup
  subscribers (knowledge accumulates into it exactly as the paper's
  istream→constream pipeline; the istream's curiosity survives as this
  broker's per-pubend head-knowledge gap check),
* one **catchup stream** per connected subscriber still recovering the
  past, fed by PFS batch reads and flow-controlled nacks,
* the **PFS** write path (from the constream) and read path (from
  catchup streams),
* **release** bookkeeping: ``released(s,p)`` acks from clients,
  ``released(p)`` reports upstream, and PFS chopping.

Persistent state (tables + PFS log volume on the SHB's disk) survives
crashes; everything else is volatile and rebuilt in :meth:`recover`,
after which the constream nacks forward from the durable
``latestDelivered`` and subscribers re-enter through catchup — the
exact scenario of Figures 7 and 8.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ..core import messages as M
from ..core.catchup import CatchupStream
from ..core.constream import ConsolidatedStream
from ..core.curiosity import CuriosityStream, NackConsolidator
from ..core.subscription import SubscriptionRegistry
from ..core.tickmap import TickMap
from ..matching.engine import MatchingEngine
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import PeriodicHandle, Scheduler
from ..pfs.pfs import PersistentFilteringSubsystem
from ..sim.crashpoints import HOOKS
from ..storage.disk import SimDisk
from ..storage.logvolume import LogVolume
from ..storage.table import PersistentTable
from ..util.errors import ProtocolError
from ..util.intervals import IntervalSet
from .base import Broker
from .costs import CostModel


class SubscriberHostingBroker(Broker):
    """Hosts durable subscribers; implements Section 4 end to end."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        pubend_names: List[str],
        cost_model: Optional[CostModel] = None,
        speed: float = 1.0,
        node: Optional[Node] = None,
        disk: Optional[SimDisk] = None,
        commit_interval_ms: float = 250.0,
        release_report_interval_ms: float = 250.0,
        gap_check_interval_ms: float = 50.0,
        head_nack_retry_ms: float = 250.0,
        catchup_buffer_qs: int = 5000,
        catchup_nack_window: int = 256,
        event_cache_span_ms: int = 120_000,
        nack_consolidation: bool = True,
        use_pfs_for_catchup: bool = True,
        subscription_refresh_ms: float = 2_000.0,
        batch_window_ms: float = 0.0,
        nack_backoff_factor: float = 1.0,
        nack_backoff_max_ms: Optional[float] = None,
        nack_jitter_ms: float = 0.0,
        nack_retry_budget: Optional[int] = None,
        pfs_volume: Optional[LogVolume] = None,
        journal_volume: Optional[LogVolume] = None,
    ) -> None:
        super().__init__(scheduler, name, cost_model, speed, node)
        #: Delivery batching (0 = the seed's one-job-per-message path).
        #: When positive, constream fan-out hands each subscriber its
        #: events per pump as one CPU job, and client links are created
        #: with the same batching window (see DurableSubscriber.connect).
        self.batch_window_ms = batch_window_ms
        self.pubend_names = sorted(pubend_names)
        #: One durable device for PFS records and tables (the paper used
        #: DB2 plus the Log Volume on the same machine's SSA disks).
        self.disk = disk if disk is not None else SimDisk(scheduler, f"{name}-store")
        self.commit_interval_ms = commit_interval_ms
        self.release_report_interval_ms = release_report_interval_ms
        self.gap_check_interval_ms = gap_check_interval_ms
        self.head_nack_retry_ms = head_nack_retry_ms
        self.catchup_buffer_qs = catchup_buffer_qs
        self.catchup_nack_window = catchup_nack_window
        self.event_cache_span_ms = event_cache_span_ms
        #: Ablation switches (benchmarks/bench_ablation_*.py): disable
        #: nack consolidation, or force catchup streams to recover by
        #: wholesale refiltering instead of PFS reads.
        self.nack_consolidation = nack_consolidation
        self.use_pfs_for_catchup = use_pfs_for_catchup
        self.subscription_refresh_ms = subscription_refresh_ms
        #: Re-nack policy for the head curiosity streams.  The defaults
        #: reproduce fixed-interval retries exactly; chaos scenarios
        #: turn on backoff + jitter + a budget (see CuriosityStream).
        self.nack_backoff_factor = nack_backoff_factor
        self.nack_backoff_max_ms = nack_backoff_max_ms
        self.nack_jitter_ms = nack_jitter_ms
        self.nack_retry_budget = nack_retry_budget

        # -- persistent stores (survive crashes) -----------------------
        # File-backed ``journal_volume``/``pfs_volume`` (the rt
        # substrate) make this state survive real process death, not
        # just the simulated kind.  Stream creation order is fixed —
        # journals first, then ``pfs:{p}`` sorted — because a LogVolume
        # numbers streams by creation order and a recovered volume must
        # repeat it.
        self.journal_volume = journal_volume

        def _journal(key: str) -> Optional[object]:
            if journal_volume is None:
                return None
            return journal_volume.stream(f"journal:{key}")

        self.meta_table = PersistentTable(
            f"{name}.meta", self.disk, journal=_journal("meta")
        )
        self.subs_table = PersistentTable(
            f"{name}.subs", self.disk, journal=_journal("subs")
        )
        self.released_table = PersistentTable(
            f"{name}.released", self.disk, journal=_journal("released")
        )
        self.pfs_volume = pfs_volume if pfs_volume is not None else LogVolume.in_memory()
        self.pfs = PersistentFilteringSubsystem(self.pfs_volume, self.disk)
        if pfs_volume is not None:
            for p in self.pubend_names:
                self.pfs._state(p)
            self.pfs.recover()
        self._own_storage(self.disk, self.pfs_volume)
        if journal_volume is not None:
            self._own_storage(journal_volume)

        # -- volatile state (rebuilt on recovery) -----------------------
        self.registry = SubscriptionRegistry(self.subs_table, self.released_table)
        self.engine = MatchingEngine()
        self.constreams: Dict[str, ConsolidatedStream] = {}
        self.catchups: Dict[Tuple[str, str], CatchupStream] = {}
        self.head_curiosity: Dict[str, CuriosityStream] = {}
        self.consolidators: Dict[str, NackConsolidator] = {}
        self._sessions: Dict[str, LinkEnd] = {}
        self._session_subs: Dict[int, Set[str]] = {}  # id(link_end) -> subs
        self._timers: List[PeriodicHandle] = []
        self.catchup_durations_ms: List[Tuple[float, float]] = []  # (end time, duration)
        self.catchup_ticks_nacked = 0  # recovery request volume (ablations)
        self.events_enqueued = 0
        self.gaps_enqueued = 0
        self.delivery_batches = 0  # batched-fanout CPU jobs issued
        self._client_extensions: Dict[type, object] = {}
        #: True while the registry is known to be missing rows: the
        #: recovered PFS holds records for subscriber nums the committed
        #: registry cannot name (the rows died uncommitted in the
        #: crash).  While suspect, this SHB must not speak with
        #: authority about which subscriptions it hosts — see
        #: _refresh_subscriptions and _report_release.  Cleared by
        #: _maybe_clear_suspect once re-registrations cover every
        #: PFS-referenced num.
        self.registry_suspect = False
        # -- dynamic topology (supervised join / drain / migration) ----
        #: While True this SHB refuses *new* subscriptions (existing
        #: ones still reconnect until they are migrated away).
        self.draining = False
        #: In-flight outbound handoffs: sub_id -> (handoff epoch, dest).
        #: Connects for these are refused with a redirect so the client
        #: does not race the handoff.  Volatile: a crash aborts the
        #: attempt and the supervisor retries with a higher epoch.
        self._migrating: Dict[str, Tuple[int, str]] = {}
        #: Set by jms.ctstore.CheckpointCommitService when the JMS CT
        #: layer is in use; migration hands its rows off through it.
        self.ct_service: Optional[object] = None
        #: Release epochs (see messages.ReleaseUpdate.epoch): bumped per
        #: pubend when a migration install may lower this SHB's release
        #: floor.  Volatile; the floor keeps post-recovery epochs above
        #: anything reported in a previous life.
        self._release_epoch: Dict[str, int] = {}
        self._release_epoch_floor = 0
        #: Handoff release pins: pubend -> [(expires_at_ms, floor)].
        #: Dropping a migrated-out row raises this SHB's release floor
        #: immediately, but the destination's covering report reaches
        #: the root asynchronously over lossy links; until it lands, the
        #: pubend could release past the handed-off floor and chop
        #: events the subscriber still needs.  Each pin keeps the old
        #: floor in this SHB's reports across that propagation window
        #: (residual-window analysis in PROTOCOL.md §8).
        self._migration_pins: Dict[str, List[Tuple[float, int]]] = {}
        #: How long a handoff release pin outlives the row drop.  Must
        #: exceed the destination's report propagation delay (report
        #: period + per-hop latency + any fault-induced stall).
        self.migration_pin_ms = 2_000.0
        #: Inbound installs awaiting root coverage confirmation:
        #: sub_id -> (refresh epoch, handoff_id, handoff epoch, reply
        #: end).  The installed row's provisional ``pfs_from`` is this
        #: SHB's delivery cursor, but ticks above it may still arrive
        #: classified as silence under the pre-install subscription
        #: union; MigrateInstalled is held back until the refresh
        #: round-trips the root (M.SubscriptionSynced), at which point
        #: every such tick is behind us and ``pfs_from`` is finalized
        #: past them.  Volatile: the supervisor's install retries
        #: restart the confirmation after a crash.
        self._cover_pending: Dict[str, Tuple[Optional[int], str, int, LinkEnd]] = {}

        if journal_volume is not None or pfs_volume is not None:
            # Process restart (rt substrate): the journal-recovered
            # registry and PFS stand in for the crash-surviving state
            # of _on_node_recover — same suspect check, same release
            # epoch floor (the rt clock is epoch time, so the floor is
            # monotone across restarts too).
            known = {sub.num for sub in self.registry.all()}
            self.registry_suspect = bool(self.pfs.live_subscriber_nums() - known)
            self._release_epoch_floor = int(scheduler.now)
        self.node.on_crash(self._on_node_crash)
        self._build_volatile()
        if journal_volume is not None:
            self._reconcile_migrations()

    # ------------------------------------------------------------------
    # Volatile state construction (initial boot and post-crash recovery)
    # ------------------------------------------------------------------
    def _build_volatile(self) -> None:
        self.engine = MatchingEngine()
        for sub in self.registry.all():
            self.engine.add(sub.sub_id, sub.predicate)
            sub.connected = False
        self.constreams = {}
        self.head_curiosity = {}
        self.consolidators = {}
        self.catchups = {}
        self._sessions = {}
        self._session_subs = {}
        # The SHB's volatile event cache ("caching events at
        # intermediate brokers and SHBs", Section 1): recent knowledge
        # answers most catchup nacks locally, keeping mass catchup off
        # the PHB (the localization Figure 8 demonstrates).
        self.event_cache: Dict[str, TickMap] = {}
        self.cache_served_nacks = 0
        for pubend in self.pubend_names:
            self.event_cache[pubend] = TickMap()
            constream = ConsolidatedStream(
                pubend,
                self.scheduler,
                self.registry,
                self.engine,
                self.pfs,
                self.meta_table,
                deliver=self._deliver,
                deliver_batch=self._deliver_batch if self.batch_window_ms > 0 else None,
            )
            self.constreams[pubend] = constream
            jitter_rng = (
                random.Random(f"{self.name}:{pubend}:nack-jitter")
                if self.nack_jitter_ms > 0.0
                else None
            )
            self.head_curiosity[pubend] = CuriosityStream(
                self.scheduler,
                pubend,
                send_nack=lambda ranges, p=pubend: self.send_up(M.Nack(p, ranges.as_tuples())),
                retry_ms=self.head_nack_retry_ms,
                backoff_factor=self.nack_backoff_factor,
                backoff_max_ms=self.nack_backoff_max_ms,
                jitter_ms=self.nack_jitter_ms,
                retry_budget=self.nack_retry_budget,
                rng=jitter_rng,
            )
            self.consolidators[pubend] = NackConsolidator(
                self.scheduler, suppress=self.nack_consolidation
            )
        self._timers = [
            self.scheduler.every(self.commit_interval_ms, self._commit_tables),
            self.scheduler.every(self.release_report_interval_ms, self._report_release),
            self.scheduler.every(self.gap_check_interval_ms, self._gap_check),
            # Soft-state refresh: upstream subscription unions are
            # volatile (a recovered parent holds them cold until this
            # refresh re-syncs them).
            self.scheduler.every(self.subscription_refresh_ms, self._refresh_subscriptions),
        ]

    def _teardown_volatile(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers = []
        for constream in self.constreams.values():
            constream.close()
        for catchup in list(self.catchups.values()):
            catchup.close()
        for curiosity in self.head_curiosity.values():
            curiosity.close()

    # ------------------------------------------------------------------
    # Client attachment
    # ------------------------------------------------------------------
    def attach_client(self, link: Link, client_node: Node) -> LinkEnd:
        """Wire a client's link; returns the client's send end."""
        recv_end = link.end_for_sender(client_node)
        send_end = link.end_for_sender(self.node)
        recv_end.on_receive(
            lambda msg: self._on_client_message(send_end, msg),
            self.costs.shb_client_recv_cost,
        )
        link.on_disconnect(lambda: self._client_link_down(send_end))
        return recv_end

    def attach_client_channel(self, chan) -> None:
        """Wire a transport-port channel (rt substrate) as a client session.

        The session handle is duck-typed — anything with ``send`` works
        — so the same dispatch, disconnect and delivery paths serve TCP
        connections and sim link ends alike.
        """
        chan.on_message(lambda msg: self._on_client_message(chan, msg))
        chan.on_close(lambda: self._client_link_down(chan))

    def register_client_extension(self, msg_type: type, handler) -> None:
        """Install a handler for an extension client message type.

        Used by layers built on top of the core protocol — the JMS
        durable-subscription layer registers its checkpoint-commit
        messages here.
        """
        self._client_extensions[msg_type] = handler

    def _on_client_message(self, send_end: LinkEnd, msg: object) -> None:
        if isinstance(msg, M.ConnectRequest):
            self._on_connect(send_end, msg)
        elif isinstance(msg, M.AckCheckpoint):
            self._on_ack(msg)
        elif isinstance(msg, M.DisconnectRequest):
            self._disconnect_sub(msg.sub_id)
        elif isinstance(msg, M.MigrateRequest):
            self._on_migrate_request(send_end, msg)
        elif isinstance(msg, M.MigrateInstall):
            self._on_migrate_install(send_end, msg)
        elif isinstance(msg, M.MigrateCommit):
            self._on_migrate_commit(send_end, msg)
        else:
            handler = self._client_extensions.get(type(msg))
            if handler is not None:
                handler(send_end, msg)

    def _on_connect(self, send_end: LinkEnd, req: M.ConnectRequest) -> None:
        refusal = self._connect_refusal(req.sub_id)
        if refusal is not None:
            send_end.send(refusal)
            return
        sub = self.registry.get(req.sub_id)
        refilter_until: Dict[str, int] = {}
        if sub is None:
            if req.predicate is None:
                raise ProtocolError(f"first connect of {req.sub_id} must carry a predicate")
            # The registration cursor: PFS records cover this
            # subscription only from here on.  Persisted with the row —
            # a later reconnect whose CT is below it must refilter that
            # span rather than read PFS silence out of it.
            registered_at = {
                p: self.constreams[p].delivered_cursor for p in self.pubend_names
            }
            # During a recovery replay the PFS can be *ahead* of the
            # cursor (records become durable before latestDelivered is
            # committed), and those records were written under the old
            # life's num assignment; a re-created subscription may be
            # handed a recycled num.  Coverage therefore starts above
            # whatever the stream already holds — replayed writes at or
            # below pfs.last_timestamp are skip-acked, never rewritten.
            # In steady state last_timestamp <= cursor, so this is the
            # plain registration cursor.
            pfs_cover_from = {
                p: max(registered_at[p], self.pfs.last_timestamp(p))
                for p in self.pubend_names
            }
            sub = self.registry.create(req.sub_id, req.predicate, pfs_from=pfs_cover_from)
            self.engine.add(sub.sub_id, sub.predicate)
            self.send_up(M.SubscriptionAdd(self._global_sub_id(sub.sub_id), sub.predicate))
            self._maybe_clear_suspect()
            if req.checkpoint is None:
                # A new subscriber starts at the constream's cursor and
                # is therefore immediately in non-catchup mode (§4.1).
                checkpoint = dict(registered_at)
            else:
                # Reconnect-anywhere (the paper's feature 5): a durable
                # subscriber from another SHB presents its CT here.
                # The same happens when *this* SHB crashed before the
                # registry row was committed: the client reconnects
                # into an SHB that no longer knows it.  Either way the
                # PFS has no records for it below the registration
                # point, so that span is recovered by refiltering
                # nacked events; from here on the PFS covers it like
                # any local subscription.
                checkpoint = dict(req.checkpoint)
                refilter_until = dict(pfs_cover_from)
            for pubend, t in checkpoint.items():
                if pubend in self.constreams:
                    self.registry.ack(sub.sub_id, pubend, t)
        else:
            if req.checkpoint is None:
                raise ProtocolError(f"reconnect of {req.sub_id} must carry its CT")
            checkpoint = dict(req.checkpoint)
            # A reconnect below the registration cursor (e.g. the
            # client disconnected mid-catchup shortly after this
            # subscription was re-created): PFS coverage still only
            # begins at pfs_from — refilter below it.
            refilter_until = {
                p: sub.pfs_from[p]
                for p in self.pubend_names
                if checkpoint.get(p, 0) < sub.pfs_from.get(p, 0)
            }
        if sub.connected:
            # Stale session (e.g. client crashed and reconnected before
            # we noticed); the new session replaces it.
            self._disconnect_sub(sub.sub_id)
        sub.connected = True
        self._sessions[sub.sub_id] = send_end
        self._session_subs.setdefault(id(send_end), set()).add(sub.sub_id)
        send_end.send(M.ConnectAccept(sub.sub_id, dict(checkpoint)))
        for pubend in self.pubend_names:
            constream = self.constreams[pubend]
            start = checkpoint.get(pubend, constream.delivered_cursor)
            if start >= constream.delivered_cursor:
                # Already at (or ahead of — see ConsolidatedStream.
                # add_non_catchup) the consolidated stream's cursor.
                constream.add_non_catchup(sub.sub_id, floor=start)
            else:
                self._start_catchup(
                    sub.sub_id, pubend, start,
                    refilter_until=refilter_until.get(pubend, 0),
                )

    def _global_sub_id(self, sub_id: str) -> str:
        """Subscription ids must be unique across the overlay."""
        return f"{self.name}/{sub_id}"

    def _on_ack(self, ack: M.AckCheckpoint) -> None:
        for pubend, t in ack.checkpoint.items():
            if pubend in self.constreams and ack.sub_id in self.registry:
                self.registry.ack(ack.sub_id, pubend, t)

    def _client_link_down(self, send_end: LinkEnd) -> None:
        for sub_id in list(self._session_subs.get(id(send_end), ())):
            self._disconnect_sub(sub_id)

    def _disconnect_sub(self, sub_id: str) -> None:
        sub = self.registry.get(sub_id)
        if sub is not None:
            sub.connected = False
        end = self._sessions.pop(sub_id, None)
        if end is not None:
            subs = self._session_subs.get(id(end))
            if subs is not None:
                subs.discard(sub_id)
        for pubend in self.pubend_names:
            self.constreams[pubend].remove_subscriber(sub_id)
            catchup = self.catchups.pop((sub_id, pubend), None)
            if catchup is not None:
                catchup.close()
                self.consolidators[pubend].drop_requester((sub_id, pubend))

    def unsubscribe(self, sub_id: str) -> None:
        """Destroy a durable subscription entirely."""
        self._disconnect_sub(sub_id)
        if sub_id in self.registry:
            self.registry.drop(sub_id)
            self.engine.remove(sub_id)
            self.send_up(M.SubscriptionRemove(self._global_sub_id(sub_id)))

    def register_durable(self, sub_id: str, predicate: object) -> None:
        """Register a durable subscription with no client session.

        A durable subscription exists independently of any connection —
        the paper's defining property.  Once registered, every matched
        event is logged to the PFS on the subscriber's behalf until a
        client eventually connects (``ConnectRequest`` with this
        ``sub_id`` and a CT) and drains it through catchup.

        This is exactly the registration half of :meth:`_on_connect`
        (registry row with its ``pfs_from`` coverage cursor, matching
        engine entry, upstream ``SubscriptionAdd``, and the initial ack
        at the registration cursor) without the session plumbing.  The
        scale harness uses it to host 10^5 subscriptions without 10^5
        client objects: a disconnected durable subscription costs its
        registry row, its matching-engine entry and its PFS records —
        which is the very state this PR puts on a diet.
        """
        if self.draining:
            raise ProtocolError(f"{self.name} is draining; no new subscriptions")
        if sub_id in self.registry:
            raise ProtocolError(f"{sub_id} is already registered at {self.name}")
        registered_at = {
            p: self.constreams[p].delivered_cursor for p in self.pubend_names
        }
        pfs_cover_from = {
            p: max(registered_at[p], self.pfs.last_timestamp(p))
            for p in self.pubend_names
        }
        sub = self.registry.create(sub_id, predicate, pfs_from=pfs_cover_from)
        self.engine.add(sub.sub_id, sub.predicate)
        self.send_up(M.SubscriptionAdd(self._global_sub_id(sub.sub_id), sub.predicate))
        self._maybe_clear_suspect()
        # A new subscriber starts at the constream's cursor (§4.1): it
        # is owed nothing below the registration point.
        for pubend, t in registered_at.items():
            self.registry.ack(sub.sub_id, pubend, t)

    # ------------------------------------------------------------------
    # Dynamic topology: supervised join / drain / migration
    # ------------------------------------------------------------------
    def fast_forward(self, cursors: Dict[str, int]) -> None:
        """Supervised-join bootstrap: adopt current dissemination cursors.

        A freshly admitted SHB starts its constreams at tick 0; the
        head gap check would immediately nack each pubend's *entire
        history* upstream.  Since a joining SHB hosts no subscriptions
        yet, it owes that history to nobody — the supervisor hands it
        the pubends' current dissemination points and delivery begins
        there.  New subscriptions then get their registration cursors
        (``pfs_from``) at or above these values, exactly as on any
        long-running SHB.
        """
        if len(self.registry):
            raise ProtocolError(
                f"{self.name}: fast_forward while hosting subscriptions"
            )
        for pubend, cursor in cursors.items():
            constream = self.constreams.get(pubend)
            if constream is not None:
                constream.fast_forward(cursor)
        self.meta_table.commit()

    def begin_drain(self) -> None:
        """Supervised drain, step 1: stop admitting new subscriptions."""
        self.draining = True

    @property
    def hosts_subscriptions(self) -> bool:
        return len(self.registry) > 0

    def _connect_refusal(self, sub_id: str) -> Optional[M.ConnectRefused]:
        """Why a connect cannot be served here, if it cannot."""
        inflight = self._migrating.get(sub_id)
        if inflight is not None:
            return M.ConnectRefused(sub_id, "migrating", redirect_to=inflight[1])
        if sub_id in self._cover_pending:
            # Installed but not yet coverage-confirmed: the row's
            # pfs_from is still provisional, so a connect served now
            # could trust PFS silence inside the suspect span.  The
            # client simply retries; confirmation takes one refresh
            # round trip to the root.
            return M.ConnectRefused(sub_id, "installing")
        if sub_id not in self.registry:
            tomb = self.meta_table.get(f"migrated_out:{sub_id}")
            if tomb is not None:
                return M.ConnectRefused(sub_id, "migrated", redirect_to=tomb[0])
            if self.draining:
                return M.ConnectRefused(sub_id, "draining")
        return None

    def _migration_epoch(self, sub_id: str) -> int:
        """Highest handoff epoch this SHB has acted on for ``sub_id``.

        Persisted (meta table) so a retry of a superseded attempt is
        still recognized as stale after any number of crashes on either
        side; messages below it are dropped, making the whole handoff
        flow idempotent under duplication, reordering and retransmission.
        """
        return self.meta_table.get(f"migrateEpoch:{sub_id}", 0)

    def _note_migration_epoch(self, sub_id: str, epoch: int) -> None:
        if epoch > self._migration_epoch(sub_id):
            self.meta_table.put(f"migrateEpoch:{sub_id}", epoch)

    def _on_migrate_request(self, send_end: LinkEnd, req: M.MigrateRequest) -> None:
        """Source side, phase 1: snapshot the subscription's durable state.

        Read-only except for the in-flight marker — the subscription
        keeps delivering here until the commit; a stale snapshot only
        makes the destination's floors conservative (the client's own
        CT is the exactly-once authority on reconnect).
        """
        if req.epoch < self._migration_epoch(req.sub_id):
            return  # stale retry of a superseded attempt
        if HOOKS.enabled:
            HOOKS.fire("migrate.offer.pre", self.name)
        sub = self.registry.get(req.sub_id)
        if sub is None:
            send_end.send(
                M.MigrateOffer(req.handoff_id, req.sub_id, req.epoch, found=False)
            )
            return
        self._note_migration_epoch(req.sub_id, req.epoch)
        self._migrating[req.sub_id] = (req.epoch, req.dest)
        jms_ct: Dict[str, int] = {}
        if self.ct_service is not None:
            jms_ct = self.ct_service.export_ct(req.sub_id)  # type: ignore[attr-defined]
        send_end.send(
            M.MigrateOffer(
                req.handoff_id,
                req.sub_id,
                req.epoch,
                found=True,
                predicate=sub.predicate,
                released_ct={p: sub.released_for(p) for p in self.pubend_names},
                pfs_from=dict(sub.pfs_from),
                jms_ct=jms_ct,
            )
        )

    def _on_migrate_install(self, send_end: LinkEnd, msg: M.MigrateInstall) -> None:
        """Destination side, phase 2: adopt the subscription durably.

        Idempotent: re-creation is guarded by the registry, acks are
        monotone, and the PFS cursor never regresses — so a duplicated
        or retried install re-acks without double-registering.

        The ack is *not* sent from this method.  The registry row's
        provisional ``pfs_from`` (this SHB's delivery cursor) is an
        overclaim: ticks above the cursor may already be in flight from
        upstream classified as silence under the pre-install union —
        they carry no PFS record here, and once the source withdraws,
        nobody else holds them either.  So the install triggers an
        epoch-tagged subscription refresh with ``want_ack`` and parks
        the reply in ``_cover_pending``; only when the root confirms
        the refresh (:meth:`_on_subscription_synced`) is ``pfs_from``
        finalized past the suspect span and MigrateInstalled sent —
        still from a registry-commit durability callback, so the
        supervisor never commits the source-side withdrawal unless this
        SHB can survive a crash and still cover the subscription.
        """
        if msg.epoch < self._migration_epoch(msg.sub_id):
            return  # superseded (e.g. the subscription migrated onward)
        if HOOKS.enabled:
            HOOKS.fire("migrate.install.pre", self.name)
        self._note_migration_epoch(msg.sub_id, msg.epoch)
        sub = self.registry.get(msg.sub_id)
        if sub is None:
            assert msg.predicate is not None
            # Provisional PFS coverage starts at *this* SHB's stream
            # position: records below it were matched without this
            # subscription (reconnect-anywhere semantics, same as
            # _on_connect).  The source's cursor is folded in for the
            # degenerate case of a destination whose own cursors lag
            # it.  Finalized upward at coverage confirmation.
            pfs_from = {
                p: max(
                    msg.pfs_from.get(p, 0),
                    self.constreams[p].delivered_cursor,
                    self.pfs.last_timestamp(p),
                )
                for p in self.pubend_names
            }
            sub = self.registry.create(msg.sub_id, msg.predicate, pfs_from=pfs_from)
            self.engine.add(sub.sub_id, sub.predicate)
            self.send_up(M.SubscriptionAdd(self._global_sub_id(sub.sub_id), sub.predicate))
            self._maybe_clear_suspect()
        for pubend, t in msg.released_ct.items():
            if pubend in self.constreams:
                self.registry.ack(msg.sub_id, pubend, t)
        if self.ct_service is not None and msg.jms_ct:
            self.ct_service.install_ct(msg.sub_id, msg.jms_ct)  # type: ignore[attr-defined]
        # A tombstone from a previous residency is void: the
        # subscription lives here again.
        self.meta_table.delete(f"migrated_out:{msg.sub_id}")
        # The installed floor may sit below everything this SHB already
        # reported released: bump the release epoch so upstream
        # aggregators accept the regression (safe — the source still
        # holds the same floor until the commit, so the pubend's Tr
        # never passed it).
        for pubend in self.pubend_names:
            self._bump_release_epoch(pubend)
        handoff_id, sub_id, epoch = msg.handoff_id, msg.sub_id, msg.epoch
        confirmed = self.meta_table.get_committed(f"migrated_in:{sub_id}")
        if (
            confirmed is not None
            and confirmed >= epoch
            and sub_id not in self._cover_pending
        ):
            # Retry of a handoff whose coverage was already confirmed
            # durably (migrated_in is written only at finalization):
            # just re-ack; a lost MigrateInstalled heals here.
            def installed_durable() -> None:
                if HOOKS.enabled:
                    HOOKS.fire("migrate.install.durable", self.name)
                self._report_release()
                send_end.send(M.MigrateInstalled(handoff_id, sub_id, epoch))

            self.meta_table.commit()
            self.registry.commit(installed_durable)
            return
        # Stage the adoption durably now, then start (or restart — a
        # retry refreshes the epoch and reply end, healing lost acks)
        # the coverage-confirmation round.  While the registry is
        # suspect the refresh is suppressed and returns None; the
        # supervisor's install retries re-attempt until it clears.
        self.meta_table.commit()
        self.registry.commit()
        refresh_epoch = self._refresh_subscriptions(want_ack=True)
        self._cover_pending[sub_id] = (refresh_epoch, handoff_id, epoch, send_end)

    def _on_migrate_commit(self, send_end: LinkEnd, msg: M.MigrateCommit) -> None:
        """Source side, phase 3: withdraw the migrated subscription.

        The tombstone commits *before* the registry row drop: a crash
        between the two leaves "row + tombstone", which recovery
        reconciles by finishing the drop — never "no row, no tombstone",
        which would let a reconnecting client silently re-create the
        subscription here while the destination also owns it.
        """
        if msg.epoch < self._migration_epoch(msg.sub_id):
            return  # a newer handoff owns this subscription's fate
        if HOOKS.enabled:
            HOOKS.fire("migrate.commit.pre", self.name)
        self._note_migration_epoch(msg.sub_id, msg.epoch)
        handoff_id, sub_id, epoch = msg.handoff_id, msg.sub_id, msg.epoch

        def done() -> None:
            if HOOKS.enabled:
                HOOKS.fire("migrate.commit.durable", self.name)
            send_end.send(M.MigrateDone(handoff_id, sub_id, epoch))

        if sub_id not in self.registry:
            # Duplicate commit: the withdrawal already happened; re-ack
            # once the tombstone is durable.
            if self.meta_table.get_committed(f"migrated_out:{sub_id}") is not None:
                done()
            else:
                self.meta_table.put(f"migrated_out:{sub_id}", (msg.dest, epoch))
                self.meta_table.commit(done)
            return
        # A client connected *here* right now must learn its session is
        # over — _disconnect_sub only drops server-side state, and a
        # client left believing it is connected would wedge silently.
        session = self._sessions.get(sub_id)
        if session is not None:
            session.send(M.ConnectRefused(sub_id, "migrated", redirect_to=msg.dest))
        self._disconnect_sub(sub_id)
        self._pin_release_floors(sub_id)
        self.meta_table.put(f"migrated_out:{sub_id}", (msg.dest, epoch))

        def tombstone_durable() -> None:
            if HOOKS.enabled:
                HOOKS.fire("migrate.commit.tombstone", self.name)
            if sub_id in self.registry:
                self.registry.drop(sub_id)
                self.engine.remove(sub_id)
                self.send_up(M.SubscriptionRemove(self._global_sub_id(sub_id)))
            self._migrating.pop(sub_id, None)
            self.registry.commit(done)

        self.meta_table.commit(tombstone_durable)

    def _reconcile_migrations(self) -> None:
        """Recovery reconciliation for interrupted handoffs.

        A durable ``migrated_out`` tombstone whose registry row
        survived (the crash hit between the tombstone commit and the
        row-drop commit) is finished now; a tombstone superseded by a
        later inbound migration (``migrated_in`` with a higher epoch
        whose tombstone delete died in the crash) is discarded so it
        cannot refuse the subscription's reconnects.
        """
        for key, value in list(self.meta_table.items()):
            if not key.startswith("migrated_out:"):
                continue
            sub_id = key[len("migrated_out:"):]
            if sub_id not in self.registry:
                continue
            _dest, epoch = value
            if epoch >= self.meta_table.get(f"migrated_in:{sub_id}", -1):
                self._pin_release_floors(sub_id)
                self.registry.drop(sub_id)
                self.engine.remove(sub_id)
                self.send_up(M.SubscriptionRemove(self._global_sub_id(sub_id)))
            else:
                self.meta_table.delete(key)

    def _pin_release_floors(self, sub_id: str) -> None:
        """Pin the departing subscription's release floors for a while.

        Called just before a migrated-out row is dropped; see the
        ``_migration_pins`` comment for why the floors must outlive the
        row.  Volatile by design: across a source crash the registry-
        suspect hold (and the destination's already-propagating report)
        cover the same window.
        """
        sub = self.registry.get(sub_id)
        if sub is None:
            return
        expires = self.scheduler.now + self.migration_pin_ms
        for pubend in self.pubend_names:
            self._migration_pins.setdefault(pubend, []).append(
                (expires, sub.released_for(pubend))
            )

    def _release_epoch_for(self, pubend: str) -> int:
        return max(self._release_epoch.get(pubend, 0), self._release_epoch_floor)

    def _bump_release_epoch(self, pubend: str) -> None:
        # Clamped to sim time so epochs stay monotone across crashes
        # (the recovery floor is also sim time).
        self._release_epoch[pubend] = max(
            self._release_epoch_for(pubend) + 1, int(self.scheduler.now)
        )

    # ------------------------------------------------------------------
    # Catchup streams
    # ------------------------------------------------------------------
    def _start_catchup(
        self, sub_id: str, pubend: str, start: int, refilter_until: int = 0
    ) -> None:
        sub = self.registry.get(sub_id)
        assert sub is not None
        key = (sub_id, pubend)

        def deliver(msg: object) -> None:
            on_sent = None
            if isinstance(msg, M.EventMessage):
                on_sent = lambda: self._catchup_delivery_sent(key)
            self._deliver(sub_id, msg, via_catchup=True, on_sent=on_sent)

        def send_nack(ranges: IntervalSet) -> None:
            self._catchup_nack(key, pubend, ranges)

        def on_switchover() -> None:
            self._on_switchover(key)

        caches_valid = refilter_until == 0
        if not self.use_pfs_for_catchup:
            # Ablation: ignore the PFS entirely — recover the whole
            # missed span by nack + refilter (what the system would do
            # without the paper's novel feature 2).  Caches stay valid:
            # the subscription was registered while they filled.
            refilter_until = 2**60
        stream = CatchupStream(
            self.scheduler,
            pubend,
            sub,
            start,
            self.pfs,
            self.constreams[pubend],
            deliver=deliver,
            send_nack=send_nack,
            on_switchover=on_switchover,
            buffer_qs=self.catchup_buffer_qs,
            nack_window_ticks=self.catchup_nack_window,
            run_costed=self._run_control,
            refilter_until=refilter_until,
            caches_valid=caches_valid,
            track_deliveries=True,
        )
        # A trivial catchup (e.g. a pure-silence span) can complete
        # synchronously inside the constructor; record its duration but
        # don't track the already-closed stream.
        if not stream.closed:
            self.catchups[key] = stream
        else:
            self.catchup_durations_ms.append(
                (self.scheduler.now, stream.catchup_duration_ms)
            )

    def _run_control(self, cost_ms: float, fn) -> None:
        """Run protocol control work (PFS reads) synchronously, charging
        its CPU cost as accounting-only load.

        Control work must not wait behind the bulk delivery queue: in a
        real broker it runs on other processors (the testbed machines
        were 6-way SMPs); gating the catchup control loop behind queued
        deliveries creates a latency-equals-progress equilibrium where
        streams chase the moving target forever.
        """
        self.node.try_submit(cost_ms, lambda: None)
        fn()

    def _catchup_delivery_sent(self, key: Tuple[str, str]) -> None:
        stream = self.catchups.get(key)
        if stream is not None:
            stream.on_delivery_sent()

    def _catchup_nack(self, key: Tuple[str, str], pubend: str, ranges: IntervalSet) -> None:
        # Serve what the local event cache knows; only the remainder
        # travels upstream (consolidated).  The cache holds knowledge
        # filtered by this SHB's *historical* subscription union, so it
        # must not answer a reconnect-anywhere stream's refilter span.
        stream = self.catchups.get(key)
        refilter_below = 0
        if stream is not None and not stream.caches_valid:
            refilter_below = stream.refilter_until + 1
        cache = self.event_cache[pubend]
        reply = M.KnowledgeUpdate(pubend)
        unresolved = IntervalSet()
        for iv in ranges:
            cacheable_start = max(iv.start, refilter_below)
            if cacheable_start > iv.start:
                unresolved.add(iv.start, min(iv.end, cacheable_start - 1))
            if cacheable_start > iv.end:
                continue
            d_events, s_ranges, l_ranges, q_set = cache.classify_within(
                cacheable_start, iv.end
            )
            reply.d_events.extend(d_events)
            reply.s_ranges.extend(s_ranges)
            reply.l_ranges.extend(l_ranges)
            unresolved.update(q_set)
        reply.coalesce()
        if not reply.is_empty():
            self.cache_served_nacks += 1
            # Serve synchronously: the stream's curiosity must see these
            # ticks resolved *before* its next retry window, or overload
            # turns into a renack storm (the reply waiting in the CPU
            # queue while the same ticks are re-requested).  The real
            # CPU cost is charged where it is paid: per delivered
            # message in _deliver, plus a small accounting charge for
            # the cache lookup itself.
            self.node.try_submit(
                self.costs.serve_nack_per_event_ms * max(1, len(reply.d_events)),
                lambda: None,
            )
            if stream is not None:
                stream.on_knowledge(reply)
        if unresolved:
            consolidator = self.consolidators[pubend]
            consolidator.register(key, unresolved)
            due = consolidator.to_forward(unresolved)
            if due:
                self.send_up(M.Nack(pubend, due.as_tuples(), refilter_below=refilter_below))

    def _on_switchover(self, key: Tuple[str, str]) -> None:
        sub_id, pubend = key
        catchup = self.catchups.pop(key, None)
        if catchup is not None:
            self.catchup_durations_ms.append((self.scheduler.now, catchup.catchup_duration_ms))
            self.catchup_ticks_nacked += catchup.curiosity.ticks_nacked
            self.consolidators[pubend].drop_requester(key)
        if sub_id in self._sessions:
            self.constreams[pubend].add_non_catchup(sub_id)

    def in_catchup(self, sub_id: str, pubend: str) -> bool:
        """The paper's ``catchup(s, p)`` predicate."""
        sub = self.registry.get(sub_id)
        if sub is None or not sub.connected:
            return True  # becomes true the instant the subscriber disconnects
        return (sub_id, pubend) in self.catchups

    # ------------------------------------------------------------------
    # Delivery (shared by constream and catchup streams)
    # ------------------------------------------------------------------
    def _deliver(
        self, sub_id: str, msg: object, via_catchup: bool = False, on_sent=None
    ) -> None:
        if isinstance(msg, M.EventMessage):
            cost = (
                self.costs.catchup_deliver_event_ms
                if via_catchup
                else self.costs.deliver_event_ms
            )
            self.events_enqueued += 1
        else:
            cost = self.costs.deliver_control_ms
            if isinstance(msg, M.GapMessage):
                self.gaps_enqueued += 1
        enqueued_ms = self.scheduler.now
        self.node.submit(
            cost,
            lambda: self._do_send(sub_id, msg, on_sent, via_catchup, enqueued_ms),
        )

    def _do_send(
        self,
        sub_id: str,
        msg: object,
        on_sent=None,
        via_catchup: bool = False,
        enqueued_ms: Optional[float] = None,
    ) -> None:
        end = self._sessions.get(sub_id)
        if end is not None:
            end.send(msg)
            if enqueued_ms is not None and isinstance(msg, M.EventMessage):
                tracer = self._tracer
                if tracer.tracing:
                    tracer.on_deliver(
                        msg.event.event_id, sub_id, via_catchup, enqueued_ms
                    )
        if on_sent is not None:
            on_sent()

    def _deliver_batch(self, sub_id: str, msgs: List[M.EventMessage]) -> None:
        """Batched constream fan-out: one CPU job for a subscriber's
        whole per-pump event list.  The messages then enter the client
        link inside one batching window, so they also travel as one
        transmission."""
        self.events_enqueued += len(msgs)
        self.delivery_batches += 1
        cost = self.costs.deliver_event_ms * len(msgs)
        enqueued_ms = self.scheduler.now
        self.node.submit(cost, lambda: self._do_send_batch(sub_id, msgs, enqueued_ms))

    def _do_send_batch(
        self, sub_id: str, msgs: List[M.EventMessage], enqueued_ms: Optional[float] = None
    ) -> None:
        end = self._sessions.get(sub_id)
        if end is not None:
            tracer = self._tracer
            for msg in msgs:
                end.send(msg)
                if enqueued_ms is not None and tracer.tracing:
                    tracer.on_deliver(
                        msg.event.event_id, sub_id, via_catchup=False,
                        start_ms=enqueued_ms,
                    )

    # ------------------------------------------------------------------
    # Knowledge intake from the parent
    # ------------------------------------------------------------------
    def _handle_from_parent(self, msg: object) -> None:
        if isinstance(msg, M.KnowledgeUpdate):
            self._on_knowledge(msg)
        elif isinstance(msg, M.SubscriptionSynced):
            self._on_subscription_synced(msg.epoch)

    def _on_subscription_synced(self, acked_epoch: int) -> None:
        """Root coverage confirmation: finalize pending installs.

        Every broker classifies knowledge synchronously and queues the
        sends; the ack is queued the same way at each hop and links are
        FIFO — so by the time it arrives here, every update classified
        under a union that lacked the installed subscription has arrived
        too.  Event timestamps never exceed their publish sim-time, so
        the local clock bounds every such suspect tick: finalizing
        ``pfs_from`` at ``int(now)`` puts the whole span below the
        coverage claim, where the client's reconnect refilters raw
        events instead of trusting PFS silence.
        """
        due = [
            (sub_id, entry)
            for sub_id, entry in self._cover_pending.items()
            if entry[0] is not None and entry[0] <= acked_epoch
        ]
        if not due:
            return
        floor = int(self.scheduler.now)
        for sub_id, (refresh_epoch, handoff_id, epoch, send_end) in due:
            del self._cover_pending[sub_id]
            if epoch < self._migration_epoch(sub_id):
                continue  # superseded while awaiting confirmation
            if self.registry.get(sub_id) is None:
                continue  # withdrawn while awaiting confirmation
            self.registry.set_pfs_from(
                sub_id, {p: floor for p in self.pubend_names}
            )
            self.meta_table.put(f"migrated_in:{sub_id}", epoch)

            def installed_durable(
                h: str = handoff_id, s: str = sub_id, e: int = epoch,
                end: LinkEnd = send_end,
            ) -> None:
                if HOOKS.enabled:
                    HOOKS.fire("migrate.install.durable", self.name)
                # Report the (possibly regressed, epoch-bumped) floor
                # eagerly: the sooner the root sees this SHB covering
                # the subscription, the shorter the source's pin has
                # to bridge.
                self._report_release()
                end.send(M.MigrateInstalled(h, s, e))

            self.meta_table.commit()
            self.registry.commit(installed_durable)

    def _handle_from_parent_batch(self, msgs: List[object]) -> None:
        """Batched uplink intake: fold every knowledge update of one
        transmission into the constream, then pump once per pubend over
        the combined doubt-horizon advance (instead of once per update).
        """
        per_pubend: Dict[str, List[M.KnowledgeUpdate]] = {}
        for msg in msgs:
            if isinstance(msg, M.KnowledgeUpdate) and msg.pubend in self.constreams:
                per_pubend.setdefault(msg.pubend, []).append(msg)
            else:
                self._handle_from_parent(msg)
        for pubend, updates in per_pubend.items():
            constream = self.constreams[pubend]
            fresh: List[M.KnowledgeUpdate] = []
            for update in updates:
                self._cache_knowledge(pubend, update)
                # The cursor is stable across the loop: it only advances
                # in a pump, and the single pump happens below.
                old, new = M.split_update(update, constream.delivered_cursor)
                if not new.is_empty():
                    fresh.append(new)
                if not old.is_empty():
                    self._route_to_catchups(pubend, old)
            if fresh:
                constream.accumulate_many(fresh)

    def _on_knowledge(self, update: M.KnowledgeUpdate) -> None:
        pubend = update.pubend
        constream = self.constreams.get(pubend)
        if constream is None:
            return
        self._cache_knowledge(pubend, update)
        old, new = M.split_update(update, constream.delivered_cursor)
        if not new.is_empty():
            constream.accumulate(new)
        if not old.is_empty():
            self._route_to_catchups(pubend, old)

    def _cache_knowledge(self, pubend: str, update: M.KnowledgeUpdate) -> None:
        # Both intake paths (per-message and batched) come through here
        # exactly once per update: memo traced-event arrival times so
        # the constream's match span starts at SHB intake.
        tracer = self._tracer
        if tracer.tracing and update.d_events:
            for event in update.d_events:
                tracer.note_arrival(event.event_id)
        cache = self.event_cache[pubend]
        for start, end in update.l_ranges:
            cache.set_lost_below(end + 1)
        for start, end in update.s_ranges:
            cache.set_s(start, end)
        for event in update.d_events:
            cache.set_d(event.timestamp, event)
        floor = cache.max_known() - self.event_cache_span_ms
        if floor > 0:
            cache.forget_below(floor)

    def _route_to_catchups(self, pubend: str, old: M.KnowledgeUpdate) -> None:
        consolidator = self.consolidators[pubend]
        hi = old.max_tick()
        assert hi is not None
        for key in consolidator.route(0, hi):
            catchup = self.catchups.get(key)  # type: ignore[arg-type]
            interest = consolidator.interest_of(key)
            if catchup is None or interest is None:
                continue
            pieces = M.clip_update_to_set(old, interest)
            if not pieces.is_empty():
                catchup.on_knowledge(pieces)
        covered = IntervalSet(old.s_ranges + old.l_ranges)
        for event in old.d_events:
            covered.add(event.timestamp)
        consolidator.satisfy_set(covered)

    def _handle_from_child(self, child: str, msg: object) -> None:  # pragma: no cover
        raise ProtocolError("SHBs are leaves of the broker tree")

    # ------------------------------------------------------------------
    # Periodic maintenance
    # ------------------------------------------------------------------
    def _gap_check(self) -> None:
        """The istream's curiosity: nack Q gaps in head knowledge."""
        for pubend, constream in self.constreams.items():
            knowledge = constream.knowledge
            frontier = knowledge.frontier
            unknown = knowledge.unknown_up_to(frontier)
            self.head_curiosity[pubend].set_want(unknown)

    def _refresh_subscriptions(self, want_ack: bool = False) -> Optional[int]:
        """Epoch-tagged full-union refresh toward the parent.

        The receiving broker stages the epoch's adds and swaps them in
        only when the count matches the sync (see Broker), so a refresh
        partially eaten by a lossy link can never warm an incomplete
        union upstream; the next refresh simply retries.

        Suppressed while the registry is suspect: an epoch sync from a
        registry that lost rows would *replace* the parent's union with
        a subset (in the worst case, replace it with nothing) and still
        mark it warm — the parent would then convert live D ticks for
        the lost subscriptions to S, and the recovering constream would
        accept that silence as final.  Holding our tongue leaves the
        parent filtering with the pre-crash union, a superset of
        everything we might still host.

        With ``want_ack`` the sync requests a downward
        :class:`~repro.core.messages.SubscriptionSynced` once the epoch
        is applied at the tree root (relayed hop by hop); returns this
        refresh's epoch so the caller can wait for that ack, or None
        when the refresh was suppressed.
        """
        if self.registry_suspect:
            return None
        epoch = self._next_sub_epoch()
        count = 0
        for sub in self.registry.all():
            self.send_up(
                M.SubscriptionAdd(
                    self._global_sub_id(sub.sub_id), sub.predicate, epoch=epoch
                )
            )
            count += 1
        self.send_up(M.SubscriptionSync(count, epoch=epoch, want_ack=want_ack))
        return epoch

    def _commit_tables(self) -> None:
        self.meta_table.commit()
        self.registry.commit()

    def _report_release(self) -> None:
        if self.registry_suspect:
            # released(p) = min over *all hosted* subscriptions — a
            # registry missing rows would overstate it, letting the
            # pubend convert to L (and this PFS chop away) ticks a lost
            # subscription has not acknowledged.  The parent simply
            # keeps our pre-crash release floor until re-registrations
            # account for every subscription the PFS knows about.
            return
        for pubend, constream in self.constreams.items():
            # Both values are capped at the *committed* latestDelivered:
            # the pubend may release (convert to L) only ticks that a
            # post-crash recovery of this SHB will never replay.
            committed_ld = constream.committed_latest_delivered
            released = min(constream.released, committed_ld)
            pins = self._migration_pins.get(pubend)
            if pins:
                now = self.scheduler.now
                pins[:] = [(exp, floor) for exp, floor in pins if exp > now]
                if pins:
                    released = min(released, *(floor for _exp, floor in pins))
                else:
                    del self._migration_pins[pubend]
            self.send_up(
                M.ReleaseUpdate(
                    pubend, released, committed_ld,
                    epoch=self._release_epoch_for(pubend),
                )
            )
            if released > 0:
                self.pfs.chop_below(pubend, released + 1)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_node_crash(self) -> None:
        self._teardown_volatile()
        self._migrating.clear()  # in-flight handoffs die with the node
        self._migration_pins.clear()
        self._cover_pending.clear()  # install retries restart confirmation
        self.disk.crash_reset()
        self.meta_table.crash_reset()
        self.pfs.crash_reset()
        self.registry.crash_reset()

    def _on_node_recover(self) -> None:
        """Rebuild from persistent state (Section 4.1 recovery).

        The constream resumes from the committed ``latestDelivered``;
        the head gap check will nack everything the broker missed while
        down; subscribers reconnect on their own and go through catchup.

        If the recovered PFS references subscriber nums the committed
        registry cannot name, subscription rows died uncommitted in the
        crash: enter suspect mode (hold union refreshes and release
        reports) until the owners reconnect and re-register.
        """
        known = {sub.num for sub in self.registry.all()}
        self.registry_suspect = bool(self.pfs.live_subscriber_nums() - known)
        # Release epochs were volatile; restarting them at sim time keeps
        # them monotone from the parent's point of view (its stored
        # epochs are all below the crash time).
        self._release_epoch = {}
        self._release_epoch_floor = int(self.scheduler.now)
        self._build_volatile()
        self._reconcile_migrations()
        self._refresh_subscriptions()

    def _maybe_clear_suspect(self) -> None:
        """Leave suspect mode once every PFS-referenced num is claimed.

        Re-registrations recycle nums from zero, so once the registry
        again covers everything the PFS mentions, this SHB can speak
        for its full subscription population: resume authoritative
        union refreshes and release reporting immediately.
        """
        if not self.registry_suspect:
            return
        known = {sub.num for sub in self.registry.all()}
        if self.pfs.live_subscriber_nums() - known:
            return
        self.registry_suspect = False
        self._refresh_subscriptions()
        self._report_release()

    def resync_upstream(self) -> None:
        """Re-announce all soft state the parent holds for this SHB.

        A process restart (rt substrate) is an extreme uplink outage:
        the journal-recovered registry is authoritative here, but the
        parent's copy of the subscription union and release floor died
        with the old process (or, for a restarted parent, with it).
        Until the union is re-announced the PHB's downstream filter
        converts every D tick to silence — ``latestDelivered`` then
        advances over events that never reached the PFS, and the span
        is unrecoverable once released.  Callers must invoke this once
        the uplink is attached (the constructor cannot: there is no
        parent link yet at construction time).
        """
        self._on_uplink_restored()

    def _on_uplink_restored(self) -> None:
        """Partition toward the parent healed: re-sync eagerly.

        Everything this SHB said during the outage is gone — refresh
        the subscription union, re-report release levels, and re-nack
        outstanding curiosity instead of waiting out retry windows.
        """
        if self.node.is_down:
            return
        self._refresh_subscriptions()
        self._report_release()
        for curiosity in self.head_curiosity.values():
            curiosity.kick()
        for consolidator in self.consolidators.values():
            consolidator.reset_suppression()
        for catchup in self.catchups.values():
            catchup.curiosity.kick()

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def latest_delivered(self, pubend: str) -> int:
        return self.constreams[pubend].latest_delivered

    def released(self, pubend: str) -> int:
        return self.constreams[pubend].released

    @property
    def active_catchup_count(self) -> int:
        return len(self.catchups)

    @property
    def connected_count(self) -> int:
        return len(self._sessions)
