"""Broker base class: a node in the overlay tree.

The overlay is a tree rooted at the publisher hosting broker (the
paper's topologies all have a single PHB; a general deployment roots
one tree per pubend).  Every broker has at most one *parent* link
(toward the PHB) and any number of *child* links (toward SHBs).

Per-pubend traffic directions:

* :class:`~repro.core.messages.KnowledgeUpdate` — downstream (parent→child),
* :class:`~repro.core.messages.Nack`,
  :class:`~repro.core.messages.ReleaseUpdate`,
  :class:`~repro.core.messages.SubscriptionAdd`/``Remove`` — upstream.

Subclasses implement ``_handle_from_parent`` / ``_handle_from_child``;
the base class owns link wiring, per-child filter engines (the union of
all subscriptions below that child, used for intermediate filtering),
and crash/recovery plumbing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import messages as M
from ..matching.engine import MatchingEngine
from ..metrics.trace import event_tracer
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import Scheduler
from ..util.errors import ConfigurationError
from .costs import DEFAULT_COSTS, CostModel


class Broker:
    """Common state and wiring for PHB / intermediate / SHB brokers."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        cost_model: Optional[CostModel] = None,
        speed: float = 1.0,
        node: Optional[Node] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.costs = cost_model if cost_model is not None else DEFAULT_COSTS
        #: Brokers may share a Node (the paper's 1-broker topology runs
        #: PHB and SHB roles on the same machine).
        self.node = node if node is not None else Node(scheduler, name, speed=speed)
        self.parent_name: Optional[str] = None
        self._parent_send: Optional[LinkEnd] = None
        self._child_sends: Dict[str, LinkEnd] = {}
        #: Per-child filter union: every subscription propagated up
        #: through that child.  Used to filter knowledge downstream.
        self.child_engines: Dict[str, MatchingEngine] = {}
        #: Whether each child's union is trustworthy.  After this
        #: broker recovers from a crash its unions are *cold* (soft
        #: state was lost): knowledge is passed unfiltered — always
        #: correct, merely less efficient — until the child re-syncs.
        self.child_filter_ready: Dict[str, bool] = {}
        #: Epoch-verified subscription refresh intake (lossy-link safe):
        #: adds tagged with an epoch are staged here per child, and only
        #: an epoch's complete set — count-checked against its
        #: SubscriptionSync — atomically replaces the live union.  A
        #: lost add therefore can never warm an incomplete union (which
        #: would filter events the child needs: silent loss).
        self._staged_subs: Dict[str, Dict[int, Dict[str, object]]] = {}
        self._applied_sub_epoch: Dict[str, int] = {}
        self._sub_epoch_counter = 0
        #: Shared per-scheduler event tracer (disabled by default; see
        #: repro.metrics.trace).  Hop sites guard on ``tracing`` so an
        #: idle tracer costs one attribute check per forwarded batch.
        self._tracer = event_tracer(scheduler)
        self.node.on_recover(self._mark_children_cold)
        self.node.on_recover(self._on_node_recover)

    # ------------------------------------------------------------------
    # Wiring (called by the topology builder)
    # ------------------------------------------------------------------
    def wire_parent(self, send_end: LinkEnd, recv_end: LinkEnd, parent: "Broker") -> None:
        """Install the directed ends for this broker's uplink.

        ``send_end`` carries this broker's messages toward the parent;
        ``recv_end`` is the direction the parent sends on.  Ends are
        passed explicitly (rather than resolved from node identity)
        because the 1-broker topology runs both roles on one node, over
        a loopback link whose two directions share endpoints.
        """
        if self._parent_send is not None:
            raise ConfigurationError(f"{self.name} already has a parent")
        self.parent_name = parent.name
        self._parent_send = send_end
        # Brokers that define _handle_from_parent_batch receive a batched
        # link transmission as one list (fold all updates, pump once);
        # others get the per-message handler for each element.
        recv_end.on_receive(
            lambda msg: self._handle_from_parent(msg),
            self.costs.broker_recv_cost,
            batch_handler=getattr(self, "_handle_from_parent_batch", None),
        )

    def wire_child(self, send_end: LinkEnd, recv_end: LinkEnd, child: "Broker") -> None:
        if child.name in self._child_sends:
            raise ConfigurationError(f"{self.name} already wired to {child.name}")
        self._child_sends[child.name] = send_end
        self.child_engines[child.name] = MatchingEngine()
        self.child_filter_ready[child.name] = True
        recv_end.on_receive(
            lambda msg: self._handle_from_child(child.name, msg),
            self.costs.broker_recv_cost,
        )

    def unwire_parent(self) -> None:
        """Remove the uplink wiring (dynamic-topology detach).

        The caller is responsible for severing or retiring the
        underlying :class:`~repro.net.link.Link`; this only forgets the
        directed ends so the broker can later be re-wired to a new
        parent (reparenting during an intermediate drain).
        """
        self.parent_name = None
        self._parent_send = None

    def unwire_child(self, child: str) -> None:
        """Forget a child's wiring, filter union and staged epochs.

        Part of the drain/leave path: after this, knowledge is no
        longer fanned out to the child and its subscriptions no longer
        contribute to this broker's upstream union.  Release-aggregator
        cleanup is separate (see ``unregister_release_child`` on PHB /
        intermediate) because it is keyed per pubend.
        """
        self._child_sends.pop(child, None)
        self.child_engines.pop(child, None)
        self.child_filter_ready.pop(child, None)
        self._staged_subs.pop(child, None)
        self._applied_sub_epoch.pop(child, None)

    @classmethod
    def connect(
        cls,
        parent: "Broker",
        child: "Broker",
        latency_ms: float = 1.0,
        batch_window_ms: float = 0.0,
    ) -> Link:
        """Create the link between a parent and child broker and wire it."""
        link = Link(
            parent.scheduler, parent.node, child.node, latency_ms,
            batch_window_ms=batch_window_ms,
        )
        parent.wire_child(link.a_to_b, link.b_to_a, child)
        child.wire_parent(link.b_to_a, link.a_to_b, parent)
        # Eager re-sync after a partition heals, instead of waiting out
        # the next poll/refresh interval.
        link.on_restore(lambda: parent._on_child_link_restored(child.name))
        link.on_restore(child._on_uplink_restored)
        return link

    @property
    def child_names(self) -> List[str]:
        return list(self._child_sends)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_up(self, msg: object) -> None:
        """Send toward the PHB (dropped silently at the root)."""
        if self._parent_send is not None:
            self._parent_send.send(msg)

    def send_to_child(self, child: str, msg: object) -> None:
        send = self._child_sends.get(child)
        if send is None:
            # A queued CPU job (e.g. a dissemination forward) can race a
            # reparent/detach and fire after the child left.  Equivalent
            # to the message dying with the severed link: the child's
            # eager resync under its new parent re-nacks anything it
            # still needs, so the forward is dropped, not crashed on.
            return
        send.send(msg)

    def _trace_forward(self, update: M.KnowledgeUpdate, start_ms: float, span: str) -> None:
        """Record a forward span for every traced event in ``update``.

        ``start_ms`` is when the update entered this broker (intake or
        durability time); the span closes now, as the update is handed
        to the downlink — so the span covers this broker's CPU queue.
        """
        tracer = self._tracer
        if tracer.tracing and update.d_events:
            tracer.mark_events(update.d_events, span, self.name, start_ms=start_ms)

    # ------------------------------------------------------------------
    # Message handling (subclass responsibilities)
    # ------------------------------------------------------------------
    def _handle_from_parent(self, msg: object) -> None:
        raise NotImplementedError

    def _handle_from_child(self, child: str, msg: object) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Epoch-verified subscription intake (shared by PHB / intermediate)
    # ------------------------------------------------------------------
    def _on_subscription_add(self, child: str, msg: M.SubscriptionAdd) -> None:
        if msg.epoch is None:
            # Immediate add (new subscriber): widen the live union right
            # away.  Widening can only un-filter, so a duplicate or
            # late-arriving copy is harmless.
            self.child_engines[child].add(msg.sub_id, msg.predicate)
            return
        if msg.epoch <= self._applied_sub_epoch.get(child, -1):
            return  # straggler from an epoch already applied
        staged = self._staged_subs.setdefault(child, {})
        for stale in [e for e in staged if e < msg.epoch]:
            del staged[stale]  # the child moved on; older epochs are dead
        staged.setdefault(msg.epoch, {})[msg.sub_id] = msg.predicate

    def _on_subscription_remove(self, child: str, msg: M.SubscriptionRemove) -> None:
        self.child_engines[child].remove(msg.sub_id)
        for epoch_subs in self._staged_subs.get(child, {}).values():
            epoch_subs.pop(msg.sub_id, None)

    def _on_subscription_sync(self, child: str, msg: M.SubscriptionSync) -> bool:
        """Apply a sync; returns True iff the child's union is now warm.

        An epoch-tagged sync only takes effect when every add of that
        epoch arrived (count check): the staged set then atomically
        replaces the live union.  On a mismatch (adds lost or still in
        flight) nothing changes — the child's next refresh retries with
        a fresh epoch.  An untagged sync keeps the legacy behavior of
        trusting the incrementally-built union.
        """
        if msg.epoch is None:
            self.child_filter_ready[child] = True
            return True
        if msg.epoch <= self._applied_sub_epoch.get(child, -1):
            return self.child_filter_ready.get(child, False)
        staged = self._staged_subs.get(child, {}).pop(msg.epoch, {})
        if len(staged) != msg.sub_count:
            return self.child_filter_ready.get(child, False)
        # Periodic refreshes almost always re-state the same set; diff
        # into the live engine instead of rebuilding its indexes (and
        # losing its match cache) from scratch.
        self.child_engines[child].replace_all(staged)
        self._applied_sub_epoch[child] = msg.epoch
        remaining = self._staged_subs.get(child)
        if remaining:
            for stale in [e for e in remaining if e <= msg.epoch]:
                del remaining[stale]
        self.child_filter_ready[child] = True
        return True

    def _next_sub_epoch(self) -> int:
        """A fresh refresh-epoch number for this broker's own uplink.

        Clamping to sim time keeps epochs monotonic even across this
        broker's crashes, so a recovered broker's refreshes are never
        mistaken for stragglers of its previous life.
        """
        self._sub_epoch_counter = max(
            self._sub_epoch_counter + 1, int(self.scheduler.now)
        )
        return self._sub_epoch_counter

    def _own_storage(self, *stores: object) -> None:
        """Tag storage devices with this broker's name.

        The crash-point explorer crashes the broker whose storage fired
        a hook; the ``owner`` attribute (on :class:`SimDisk` and
        :class:`LogVolume`) is how it finds out whom.  First claim
        wins: in the single-broker topology the PHB and SHB roles share
        one disk, and its staged writes are voided by that one shared
        node's crash either way.
        """
        for store in stores:
            if getattr(store, "owner", None) is None:
                store.owner = self.name

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop the broker's machine (volatile state is lost)."""
        self.node.crash()

    def recover(self) -> None:
        self.node.recover()

    def fail_for(self, duration_ms: float) -> None:
        self.node.fail_for(duration_ms)

    def _mark_children_cold(self) -> None:
        for child in self.child_filter_ready:
            self.child_filter_ready[child] = False
        # Staged epochs and the applied-epoch floor were volatile too;
        # forgetting the floor lets a child whose own epoch counter
        # restarted (it also crashed) re-warm us.
        self._staged_subs.clear()
        self._applied_sub_epoch.clear()

    def _on_node_recover(self) -> None:
        """Subclasses rebuild volatile state here."""

    def _on_uplink_restored(self) -> None:
        """The link toward the parent came back after a partition.

        Subclasses re-sync eagerly (refresh subscriptions, re-report
        release, kick curiosity); the base class does nothing.
        """

    def _on_child_link_restored(self, child: str) -> None:
        """The link toward ``child`` came back after a partition."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
