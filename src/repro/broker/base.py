"""Broker base class: a node in the overlay tree.

The overlay is a tree rooted at the publisher hosting broker (the
paper's topologies all have a single PHB; a general deployment roots
one tree per pubend).  Every broker has at most one *parent* link
(toward the PHB) and any number of *child* links (toward SHBs).

Per-pubend traffic directions:

* :class:`~repro.core.messages.KnowledgeUpdate` — downstream (parent→child),
* :class:`~repro.core.messages.Nack`,
  :class:`~repro.core.messages.ReleaseUpdate`,
  :class:`~repro.core.messages.SubscriptionAdd`/``Remove`` — upstream.

Subclasses implement ``_handle_from_parent`` / ``_handle_from_child``;
the base class owns link wiring, per-child filter engines (the union of
all subscriptions below that child, used for intermediate filtering),
and crash/recovery plumbing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..matching.engine import MatchingEngine
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import Scheduler
from ..util.errors import ConfigurationError
from .costs import DEFAULT_COSTS, CostModel


class Broker:
    """Common state and wiring for PHB / intermediate / SHB brokers."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        cost_model: Optional[CostModel] = None,
        speed: float = 1.0,
        node: Optional[Node] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.costs = cost_model if cost_model is not None else DEFAULT_COSTS
        #: Brokers may share a Node (the paper's 1-broker topology runs
        #: PHB and SHB roles on the same machine).
        self.node = node if node is not None else Node(scheduler, name, speed=speed)
        self.parent_name: Optional[str] = None
        self._parent_send: Optional[LinkEnd] = None
        self._child_sends: Dict[str, LinkEnd] = {}
        #: Per-child filter union: every subscription propagated up
        #: through that child.  Used to filter knowledge downstream.
        self.child_engines: Dict[str, MatchingEngine] = {}
        #: Whether each child's union is trustworthy.  After this
        #: broker recovers from a crash its unions are *cold* (soft
        #: state was lost): knowledge is passed unfiltered — always
        #: correct, merely less efficient — until the child re-syncs.
        self.child_filter_ready: Dict[str, bool] = {}
        self.node.on_recover(self._mark_children_cold)
        self.node.on_recover(self._on_node_recover)

    # ------------------------------------------------------------------
    # Wiring (called by the topology builder)
    # ------------------------------------------------------------------
    def wire_parent(self, send_end: LinkEnd, recv_end: LinkEnd, parent: "Broker") -> None:
        """Install the directed ends for this broker's uplink.

        ``send_end`` carries this broker's messages toward the parent;
        ``recv_end`` is the direction the parent sends on.  Ends are
        passed explicitly (rather than resolved from node identity)
        because the 1-broker topology runs both roles on one node, over
        a loopback link whose two directions share endpoints.
        """
        if self._parent_send is not None:
            raise ConfigurationError(f"{self.name} already has a parent")
        self.parent_name = parent.name
        self._parent_send = send_end
        # Brokers that define _handle_from_parent_batch receive a batched
        # link transmission as one list (fold all updates, pump once);
        # others get the per-message handler for each element.
        recv_end.on_receive(
            lambda msg: self._handle_from_parent(msg),
            self.costs.broker_recv_cost,
            batch_handler=getattr(self, "_handle_from_parent_batch", None),
        )

    def wire_child(self, send_end: LinkEnd, recv_end: LinkEnd, child: "Broker") -> None:
        if child.name in self._child_sends:
            raise ConfigurationError(f"{self.name} already wired to {child.name}")
        self._child_sends[child.name] = send_end
        self.child_engines[child.name] = MatchingEngine()
        self.child_filter_ready[child.name] = True
        recv_end.on_receive(
            lambda msg: self._handle_from_child(child.name, msg),
            self.costs.broker_recv_cost,
        )

    @classmethod
    def connect(
        cls,
        parent: "Broker",
        child: "Broker",
        latency_ms: float = 1.0,
        batch_window_ms: float = 0.0,
    ) -> Link:
        """Create the link between a parent and child broker and wire it."""
        link = Link(
            parent.scheduler, parent.node, child.node, latency_ms,
            batch_window_ms=batch_window_ms,
        )
        parent.wire_child(link.a_to_b, link.b_to_a, child)
        child.wire_parent(link.b_to_a, link.a_to_b, parent)
        return link

    @property
    def child_names(self) -> List[str]:
        return list(self._child_sends)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_up(self, msg: object) -> None:
        """Send toward the PHB (dropped silently at the root)."""
        if self._parent_send is not None:
            self._parent_send.send(msg)

    def send_to_child(self, child: str, msg: object) -> None:
        self._child_sends[child].send(msg)

    # ------------------------------------------------------------------
    # Message handling (subclass responsibilities)
    # ------------------------------------------------------------------
    def _handle_from_parent(self, msg: object) -> None:
        raise NotImplementedError

    def _handle_from_child(self, child: str, msg: object) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop the broker's machine (volatile state is lost)."""
        self.node.crash()

    def recover(self) -> None:
        self.node.recover()

    def fail_for(self, duration_ms: float) -> None:
        self.node.fail_for(duration_ms)

    def _mark_children_cold(self) -> None:
        for child in self.child_filter_ready:
            self.child_filter_ready[child] = False

    def _on_node_recover(self) -> None:
        """Subclasses rebuild volatile state here."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
