"""The publisher hosting broker (PHB).

The PHB is the root of the knowledge tree and the only broker that
persistently logs events (novel feature 1).  It hosts one or more
pubends sharing the broker's log disk, disseminates their knowledge to
child brokers — filtering D ticks down to S per child using the union
of subscriptions propagated from below — and answers nacks from the
durable event logs.

Availability note from the paper: PHBs are few, so hosting them on
fault-tolerant hardware is affordable; SHB availability does not
matter for durability because events live here.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import messages as M
from ..core.pubend import Pubend
from ..metrics.trace import SPAN_PHB_FORWARD
from ..core.release import EarlyReleasePolicy
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import Scheduler
from ..storage.disk import SimDisk
from ..storage.table import PersistentTable
from ..util.errors import ConfigurationError
from ..util.intervals import IntervalSet
from .base import Broker
from .costs import CostModel


class PublisherHostingBroker(Broker):
    """Hosts pubends; root of dissemination, recovery and release."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        cost_model: Optional[CostModel] = None,
        speed: float = 1.0,
        node: Optional[Node] = None,
        disk: Optional[SimDisk] = None,
        nack_reply_max_events: int = 375,
        journal_volume: Optional[object] = None,
    ) -> None:
        super().__init__(scheduler, name, cost_model, speed, node)
        #: The broker's log device, shared by all hosted pubends.
        self.disk = disk if disk is not None else SimDisk(scheduler, f"{name}-log")
        self._own_storage(self.disk)
        #: File-backed journal volume (rt substrate): makes the seq
        #: table and every pubend's event log survive real process
        #: death.  Stream creation order is fixed (pub_seqs first, then
        #: one per pubend in creation order — rt boots must create
        #: pubends in a deterministic order, e.g. sorted).
        self.journal_volume = journal_volume
        if journal_volume is not None:
            self._own_storage(journal_volume)
        self.pubends: Dict[str, Pubend] = {}
        self.nack_reply_max_events = nack_reply_max_events
        self.events_accepted = 0
        self.nacks_served = 0
        self.duplicates_rejected = 0
        # Reliable publishing: highest durably-logged sequence number
        # per publisher, persisted so PHB recovery keeps rejecting
        # retransmitted duplicates.
        self.seq_table = PersistentTable(
            f"{name}.pub_seqs",
            self.disk,
            journal=(
                journal_volume.stream("journal:pub_seqs")  # type: ignore[attr-defined]
                if journal_volume is not None
                else None
            ),
        )
        self._pub_seqs: Dict[str, int] = {}       # durable floor (acks)
        self._accepted_seqs: Dict[str, int] = {}  # staged floor (gap check)
        if journal_volume is not None:
            # Journal-recovered floor; extended per pubend as each
            # recovered event log is created (see create_pubend).
            for publisher, seq in self.seq_table.committed_items():
                self._pub_seqs[publisher] = seq
        self._commit_timer = scheduler.every(250.0, self.seq_table.commit)
        self.node.on_crash(self._on_node_crash)

    # ------------------------------------------------------------------
    # Pubend management
    # ------------------------------------------------------------------
    def create_pubend(self, name: str, policy: Optional[EarlyReleasePolicy] = None) -> Pubend:
        if name in self.pubends:
            raise ConfigurationError(f"pubend {name} already exists on {self.name}")
        journal = (
            self.journal_volume.stream(f"pubend:{name}")  # type: ignore[attr-defined]
            if self.journal_volume is not None
            else None
        )
        pubend = Pubend(
            name, self.scheduler, disk=self.disk, policy=policy, journal=journal
        )
        pubend.on_knowledge = lambda upd, p=name: self._disseminate(upd)
        self.pubends[name] = pubend
        if journal is not None:
            # Extend the dedup floor over the recovered log: the
            # committed seq table may trail it (commits are periodic),
            # exactly as in post-crash _on_node_recover.
            for event in pubend.log.read_range(0, 2**60):
                if event.publisher is not None and event.seq is not None:
                    if event.seq > self._pub_seqs.get(event.publisher, 0):
                        self._pub_seqs[event.publisher] = event.seq
        return pubend

    def register_release_child(self, pubend: str, child: str) -> None:
        """Topology hook: ``child`` will report release state for ``pubend``."""
        self.pubends[pubend].release_agg.register_child(child)

    def unregister_release_child(self, pubend: str, child: str) -> None:
        """Drain hook: ``child`` left the tree and will report no more.

        Without this a detached child's last report would pin the
        aggregate minimum forever, freezing release for everyone.
        """
        self.pubends[pubend].release_agg.unregister_child(child)
        self.pubends[pubend].apply_release()

    # ------------------------------------------------------------------
    # Publish path
    # ------------------------------------------------------------------
    def publish(
        self,
        pubend: str,
        attributes: Dict[str, object],
        payload_bytes: int = 250,
        publisher: Optional[str] = None,
        trace_t0: Optional[float] = None,
    ) -> None:
        """Accept an event (consumes PHB CPU, then stages the log write).

        ``trace_t0`` is the client-side publish time (defaults to now,
        which is the same thing for a co-located caller); it anchors
        the event's trace when sampling is on.
        """
        if trace_t0 is None:
            trace_t0 = self.scheduler.now
        self.node.submit(
            self.costs.publish_ms,
            lambda: self._do_publish(
                pubend, attributes, payload_bytes, publisher, trace_t0=trace_t0
            ),
        )

    def _do_publish(
        self,
        pubend: str,
        attributes: Dict[str, object],
        payload_bytes: int,
        publisher: Optional[str],
        trace_t0: Optional[float] = None,
    ) -> None:
        self.pubends[pubend].publish(
            attributes, payload_bytes, publisher, trace_t0=trace_t0
        )
        self.events_accepted += 1

    # ------------------------------------------------------------------
    # Reliable publishing (exactly-once from publisher to pubend)
    # ------------------------------------------------------------------
    def attach_publisher(self, link: Link, client_node: Node) -> None:
        """Wire a reliable publisher's link (see ReliablePublisher)."""
        recv_end = link.end_for_sender(client_node)
        send_end = link.end_for_sender(self.node)
        recv_end.on_receive(
            lambda msg: self._on_publisher_message(send_end, msg),
            lambda msg: self.costs.publish_ms if isinstance(msg, M.PublishRequest) else 0.02,
        )

    def attach_publisher_channel(self, chan) -> None:
        """Wire a transport-port channel (rt substrate) as a publisher
        session; acks go back over the same duck-typed channel."""
        chan.on_message(lambda msg: self._on_publisher_message(chan, msg))

    def _on_publisher_message(self, send_end: LinkEnd, msg: object) -> None:
        if not isinstance(msg, M.PublishRequest):
            return
        if msg.publisher is None or msg.seq is None:
            # Unreliable fire-and-forget publish over a client link.
            pubend = msg.pubend or next(iter(self.pubends))
            self._do_publish(
                pubend, msg.attributes, msg.payload_bytes, msg.publisher,
                trace_t0=msg.client_ms,
            )
            return
        accepted = self._accepted_seqs.get(
            msg.publisher, self._pub_seqs.get(msg.publisher, 0)
        )
        if msg.seq != accepted + 1:
            # Go-back-N receiver: accept only the next expected seq.
            # Below: a retransmitted duplicate.  Above: a gap — earlier
            # events were lost (e.g. dropped by a crash of this broker
            # while later sends were already in flight); accepting out
            # of order would poison the dedup floor.  Either way,
            # re-acknowledging the durable floor makes the publisher
            # resend everything after it, in order.
            self.duplicates_rejected += 1
            send_end.send(M.PublishAck(msg.publisher, self._pub_seqs.get(msg.publisher, 0)))
            return
        self._accepted_seqs[msg.publisher] = msg.seq
        pubend = msg.pubend or next(iter(self.pubends))

        def durable(publisher: str = msg.publisher, seq: int = msg.seq) -> None:
            # FIFO links + ordered group commit keep seqs contiguous.
            if seq > self._pub_seqs.get(publisher, 0):
                self._pub_seqs[publisher] = seq
                self.seq_table.put(publisher, seq)
            send_end.send(M.PublishAck(publisher, self._pub_seqs[publisher]))

        self.pubends[pubend].publish(
            msg.attributes, msg.payload_bytes, msg.publisher,
            seq=msg.seq, ttl_ms=msg.ttl_ms, on_durable=durable,
            trace_t0=msg.client_ms,
        )
        self.events_accepted += 1

    # ------------------------------------------------------------------
    # Dissemination with per-child filtering
    # ------------------------------------------------------------------
    def _disseminate(self, update: M.KnowledgeUpdate) -> None:
        t0 = self.scheduler.now  # dissemination starts at log durability
        for child in self.child_names:
            filtered = self._filter_for_child(child, update)
            if not filtered.is_empty():
                cost = self.costs.forward_per_link_event_ms * max(1, len(update.d_events))

                def job(c=child, u=filtered, t0=t0) -> None:
                    self._trace_forward(u, t0, SPAN_PHB_FORWARD)
                    self.send_to_child(c, u)

                self.node.submit(cost, job)

    def _filter_for_child(
        self, child: str, update: M.KnowledgeUpdate, keep_below: int = 0
    ) -> M.KnowledgeUpdate:
        """Convert D ticks that match nothing below ``child`` into S.

        A cold union (post-recovery, pre-resync) must not filter:
        passing events the child may not need is safe; hiding events it
        does need would be silent loss.

        ``keep_below``: D events below this tick are passed unfiltered.
        A nack whose ``refilter_below`` is set is (partly) on behalf of
        a subscription the union below ``child`` may not include yet —
        a reconnect-anywhere registration, or a reconnect after the SHB
        lost its registry, racing nacks already in flight through the
        SHB's consolidator.  Converting its events to S here would be
        taken as "nothing matched at this tick" and silently lose them;
        the SHB refilters the raw events against the subscription's own
        predicate instead.
        """
        if not self.child_filter_ready.get(child, True):
            return update
        engine = self.child_engines[child]
        if engine.accepts_all() and len(update.s_ranges) <= 1 and len(update.l_ranges) <= 1:
            # A wildcard below this link with nothing to coalesce: the
            # filtered update would be a field-for-field copy, so ship
            # the shared instance instead of allocating one per child
            # (nothing on the receive path mutates a payload).
            return update
        out = M.KnowledgeUpdate(update.pubend)
        out.s_ranges = list(update.s_ranges)
        out.l_ranges = list(update.l_ranges)
        if engine.accepts_all():
            # A wildcard below this link: every D tick passes, no need
            # to consult the aggregate per event.
            out.d_events = list(update.d_events)
            return out.coalesce()
        # Classify the whole coalesced tick-range in one aggregate pass;
        # keep_below events skip classification entirely.
        pending = [e for e in update.d_events if e.timestamp >= keep_below]
        flags = iter(engine.matches_any_batch([e.attributes for e in pending]))
        for event in update.d_events:
            if event.timestamp < keep_below or next(flags):
                out.d_events.append(event)
            else:
                out.s_ranges.append((event.timestamp, event.timestamp))
        # Filtering appends one single-tick S range per suppressed event;
        # a run of non-matching events ships as one range instead.
        return out.coalesce()

    # ------------------------------------------------------------------
    # Upstream traffic from children
    # ------------------------------------------------------------------
    def _handle_from_parent(self, msg: object) -> None:  # pragma: no cover
        raise ConfigurationError("PHB is the tree root; it has no parent")

    def _handle_from_child(self, child: str, msg: object) -> None:
        if isinstance(msg, M.Nack):
            self._serve_nack(child, msg)
        elif isinstance(msg, M.ReleaseUpdate):
            pubend = self.pubends.get(msg.pubend)
            if pubend is not None:
                pubend.on_release_report(
                    child, msg.released, msg.latest_delivered, epoch=msg.epoch
                )
        elif isinstance(msg, M.SubscriptionAdd):
            self._on_subscription_add(child, msg)
        elif isinstance(msg, M.SubscriptionRemove):
            self._on_subscription_remove(child, msg)
        elif isinstance(msg, M.SubscriptionSync):
            self._on_subscription_sync(child, msg)
            applied = self._applied_sub_epoch.get(child, -1)
            if msg.want_ack and msg.epoch is not None and applied >= msg.epoch:
                # Root ack for a coverage-confirmation refresh.  Queued
                # through the CPU queue: dissemination classifies
                # synchronously but *sends* via submitted jobs, so the
                # ack must not overtake knowledge classified under the
                # pre-refresh union (see SubscriptionSynced).
                ack = M.SubscriptionSynced(applied)
                self.node.submit(
                    0.02, lambda c=child, a=ack: self.send_to_child(c, a)
                )

    def _serve_nack(self, child: str, nack: M.Nack) -> None:
        pubend = self.pubends.get(nack.pubend)
        if pubend is None:
            return
        ranges = IntervalSet(nack.ranges)
        reply = pubend.serve_nack(ranges, max_events=self.nack_reply_max_events)
        if reply.is_empty():
            return
        self.nacks_served += 1
        reply = self._filter_for_child(child, reply, keep_below=nack.refilter_below)
        cost = self.costs.serve_nack_per_event_ms * max(1, len(reply.d_events))
        t0 = self.scheduler.now

        def job(reply=reply, t0=t0) -> None:
            self._trace_forward(reply, t0, SPAN_PHB_FORWARD)
            self.send_to_child(child, reply)

        self.node.submit(cost, job)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_node_crash(self) -> None:
        self._commit_timer.cancel()
        self.disk.crash_reset()
        self.seq_table.crash_reset()
        self._accepted_seqs = {}  # staged acceptances die with the node
        for pubend in self.pubends.values():
            pubend.crash_reset()

    def _on_node_recover(self) -> None:
        for pubend in self.pubends.values():
            pubend.recover()
        # Rebuild the dedup floor: the committed table may trail the
        # durable log (commits are periodic), so take the max of both.
        self._pub_seqs = {}
        for publisher, seq in self.seq_table.committed_items():
            self._pub_seqs[publisher] = seq
        for pubend in self.pubends.values():
            for event in pubend.log.read_range(0, 2**60):
                if event.publisher is not None and event.seq is not None:
                    if event.seq > self._pub_seqs.get(event.publisher, 0):
                        self._pub_seqs[event.publisher] = event.seq
        self._commit_timer = self.scheduler.every(250.0, self.seq_table.commit)
