"""Overlay topology builders.

Figure 3 of the paper shows the evaluation topologies: a single broker
(publisher and subscribers on one machine), a 2-broker network (PHB +
SHB), and 2-SHB / 4-SHB networks; the latency experiment uses a 5-hop
chain.  These builders assemble the corresponding broker trees, create
the pubends, wire the links and perform the release-protocol child
registration the aggregators require.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.release import EarlyReleasePolicy
from ..net.link import Link
from ..net.node import Node
from ..net.simtime import Scheduler
from ..storage.disk import SimDisk
from ..util.errors import ConfigurationError
from .base import Broker
from .costs import CostModel
from .intermediate import IntermediateBroker
from .phb import PublisherHostingBroker
from .shb import SubscriberHostingBroker


@dataclass
class Overlay:
    """A built broker overlay plus its bookkeeping."""

    scheduler: Scheduler
    phb: PublisherHostingBroker
    shbs: List[SubscriberHostingBroker] = field(default_factory=list)
    intermediates: List[IntermediateBroker] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)
    #: Brokers removed from the tree by :func:`detach_broker`.  Kept
    #: (rather than dropped) so the oracles can still audit their
    #: final durable state after a drain.
    retired: List[Broker] = field(default_factory=list)

    @property
    def pubend_names(self) -> List[str]:
        return sorted(self.phb.pubends)

    def all_brokers(self) -> List[Broker]:
        return [self.phb, *self.intermediates, *self.shbs]

    def shb_by_name(self, name: str) -> SubscriberHostingBroker:
        for shb in self.shbs:
            if shb.name == name:
                return shb
        raise ConfigurationError(f"no SHB named {name}")

    def broker_by_name(self, name: str) -> Broker:
        for broker in self.all_brokers():
            if broker.name == name:
                return broker
        raise ConfigurationError(f"no broker named {name}")

    def parent_of(self, broker: Broker) -> Optional[Broker]:
        if broker.parent_name is None:
            return None
        return self.broker_by_name(broker.parent_name)

    def link_between(self, parent: Broker, child: Broker) -> Link:
        """The link whose endpoints are these two brokers' nodes.

        Prefers a live link; falls back to a severed one (a detach must
        find the link even if a fault already cut it).
        """
        found: Optional[Link] = None
        for link in self.links:
            ends = (link.a_to_b.sender, link.a_to_b.receiver)
            if ends in ((parent.node, child.node), (child.node, parent.node)):
                if not link.down:
                    return link
                found = link
        if found is not None:
            return found
        raise ConfigurationError(f"no link {parent.name} <-> {child.name}")


def _register_release_children(overlay: Overlay) -> None:
    """Register every downstream link as a release-aggregation child."""
    for pubend in overlay.pubend_names:
        for child in overlay.phb.child_names:
            overlay.phb.register_release_child(pubend, child)
        for broker in overlay.intermediates:
            for child in broker.child_names:
                broker.register_release_child(pubend, child)


def build_two_broker(
    scheduler: Scheduler,
    pubends: List[str],
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """The paper's 2-broker network: one PHB directly feeding one SHB."""
    return build_star(
        scheduler, pubends, n_shbs=1, policy=policy, cost_model=cost_model,
        link_latency_ms=link_latency_ms, batch_window_ms=batch_window_ms,
        **shb_kwargs,
    )


def build_star(
    scheduler: Scheduler,
    pubends: List[str],
    n_shbs: int,
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """One PHB with ``n_shbs`` SHB children (the scalability topologies).

    ``batch_window_ms`` configures batching on every broker link *and*
    on the SHBs (whose client links inherit it); 0 keeps the unbatched
    per-message paths everywhere.
    """
    if n_shbs < 1:
        raise ConfigurationError("need at least one SHB")
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    overlay = Overlay(scheduler, phb)
    for i in range(n_shbs):
        shb = SubscriberHostingBroker(
            scheduler, f"shb{i + 1}", pubends, cost_model=cost_model, **shb_kwargs
        )
        overlay.shbs.append(shb)
        overlay.links.append(
            Broker.connect(phb, shb, link_latency_ms, batch_window_ms=batch_window_ms)
        )
    _register_release_children(overlay)
    return overlay


def build_chain(
    scheduler: Scheduler,
    pubends: List[str],
    n_intermediates: int,
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """PHB → k intermediates → SHB (the 5-hop latency topology uses k=3:
    publisher→PHB, three broker hops, SHB→subscriber are the 5 hops)."""
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    overlay = Overlay(scheduler, phb)
    upstream: Broker = phb
    for i in range(n_intermediates):
        mid = IntermediateBroker(scheduler, f"ib{i + 1}", cost_model=cost_model)
        overlay.intermediates.append(mid)
        overlay.links.append(
            Broker.connect(upstream, mid, link_latency_ms, batch_window_ms=batch_window_ms)
        )
        upstream = mid
    shb = SubscriberHostingBroker(scheduler, "shb1", pubends, cost_model=cost_model, **shb_kwargs)
    overlay.shbs.append(shb)
    overlay.links.append(
        Broker.connect(upstream, shb, link_latency_ms, batch_window_ms=batch_window_ms)
    )
    _register_release_children(overlay)
    return overlay


def build_single_broker(
    scheduler: Scheduler,
    pubends: List[str],
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """The paper's 1-broker network: PHB and SHB roles on one machine.

    Both roles share a single :class:`~repro.net.node.Node` and a
    single disk, connected by a loopback link with negligible latency.
    The node gets a modest speed bump over a plain SHB: the testbed
    machines were 6-way SMPs, so publisher-side work overlaps with
    delivery work across processors instead of strictly serializing
    behind it as a single service queue would — this is what lets the
    paper observe that "the capacity of the 1 SHB network is similar to
    the 1 broker network".
    """
    node = Node(scheduler, "broker1", speed=1.35)
    disk = SimDisk(scheduler, "broker1-disk")
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model, node=node, disk=disk)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    shb = SubscriberHostingBroker(
        scheduler, "shb1", pubends, cost_model=cost_model, node=node, disk=disk, **shb_kwargs
    )
    overlay = Overlay(scheduler, phb, shbs=[shb])
    overlay.links.append(
        Broker.connect(phb, shb, latency_ms=0.05, batch_window_ms=batch_window_ms)
    )
    _register_release_children(overlay)
    return overlay


def build_tree(
    scheduler: Scheduler,
    pubends: List[str],
    fanout: List[int],
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """A uniform tree: PHB → fanout[0] intermediates → ... → SHB leaves.

    ``fanout`` gives the branching at each internal level; the last
    level's children are SHBs.  ``build_tree(s, ps, [2, 2])`` yields a
    PHB, 2 intermediates and 4 SHBs.
    """
    if not fanout:
        raise ConfigurationError("fanout must have at least one level")
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    overlay = Overlay(scheduler, phb)
    frontier: List[Broker] = [phb]
    for level, width in enumerate(fanout):
        is_leaf_level = level == len(fanout) - 1
        next_frontier: List[Broker] = []
        for parent in frontier:
            for j in range(width):
                if is_leaf_level:
                    name = f"shb{len(overlay.shbs) + 1}"
                    child: Broker = SubscriberHostingBroker(
                        scheduler, name, pubends, cost_model=cost_model, **shb_kwargs
                    )
                    overlay.shbs.append(child)  # type: ignore[arg-type]
                else:
                    name = f"ib{len(overlay.intermediates) + 1}"
                    child = IntermediateBroker(scheduler, name, cost_model=cost_model)
                    overlay.intermediates.append(child)  # type: ignore[arg-type]
                overlay.links.append(
                    Broker.connect(
                        parent, child, link_latency_ms, batch_window_ms=batch_window_ms
                    )
                )
                next_frontier.append(child)
        frontier = next_frontier
    _register_release_children(overlay)
    return overlay


# ----------------------------------------------------------------------
# Dynamic topology: incremental attach / detach on a running overlay
# ----------------------------------------------------------------------
def attach_shb(
    overlay: Overlay,
    name: str,
    parent: Optional[Broker] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    fast_forward: bool = True,
    **shb_kwargs: object,
) -> SubscriberHostingBroker:
    """Admit a new SHB under ``parent`` (default: the PHB) mid-run.

    Before wiring, the fresh SHB is fast-forwarded to each pubend's
    current dissemination point (it hosts no subscriptions, so it owes
    no history to anyone) — otherwise its head gap check would nack the
    entire past the moment knowledge starts flowing.  The parent's
    release aggregator registers the new child, which holds the release
    aggregate until the newcomer's first report arrives — a stall, never
    an unsafe release.
    """
    parent = parent if parent is not None else overlay.phb
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    shb = SubscriberHostingBroker(
        overlay.scheduler, name, overlay.pubend_names,
        cost_model=cost_model, **shb_kwargs,
    )
    if fast_forward:
        shb.fast_forward(
            {p: overlay.phb.pubends[p].disseminated for p in overlay.pubend_names}
        )
    overlay.shbs.append(shb)
    overlay.links.append(
        Broker.connect(parent, shb, link_latency_ms, batch_window_ms=batch_window_ms)
    )
    for pubend in overlay.pubend_names:
        parent.register_release_child(pubend, shb.name)  # type: ignore[union-attr]
    return shb


def attach_intermediate(
    overlay: Overlay,
    name: str,
    parent: Optional[Broker] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
) -> IntermediateBroker:
    """Admit a new (childless) intermediate under ``parent`` mid-run."""
    parent = parent if parent is not None else overlay.phb
    mid = IntermediateBroker(overlay.scheduler, name, cost_model=cost_model)
    overlay.intermediates.append(mid)
    overlay.links.append(
        Broker.connect(parent, mid, link_latency_ms, batch_window_ms=batch_window_ms)
    )
    # Unlike a fresh SHB (which owes nothing until it registers a
    # subscription itself), a fresh intermediate may acquire a subtree
    # at any moment via reparenting — and the parent filtering against
    # its empty-but-warm union would convert that subtree's events to
    # *final* silence until the intermediate's first upstream refresh.
    # Cold passes knowledge unfiltered until the epoch sync warms it.
    parent.child_filter_ready[mid.name] = False
    for pubend in overlay.pubend_names:
        parent.register_release_child(pubend, mid.name)  # type: ignore[union-attr]
    return mid


def detach_broker(overlay: Overlay, broker: Broker) -> None:
    """Remove a (quiesced) leaf broker from the tree permanently.

    The caller is responsible for the protocol-level drain — an SHB
    must host no subscriptions, an intermediate no children; this is
    the wiring-level removal: sever the uplink, forget both sides'
    wiring, drop the departed child from the parent's release
    aggregation (whose pinned minimum would otherwise freeze release
    for the whole tree) and purge per-child relay state.  The broker
    object moves to ``overlay.retired`` so oracles can still audit its
    final durable state.
    """
    if isinstance(broker, SubscriberHostingBroker) and len(broker.registry):
        raise ConfigurationError(
            f"{broker.name} still hosts subscriptions; migrate them first"
        )
    if broker.child_names:
        raise ConfigurationError(
            f"{broker.name} still has children; reparent them first"
        )
    parent = overlay.parent_of(broker)
    if parent is None:
        raise ConfigurationError(f"{broker.name} has no parent to detach from")
    link = overlay.link_between(parent, broker)
    link.sever()
    overlay.links.remove(link)
    parent.unwire_child(broker.name)
    broker.unwire_parent()
    for pubend in overlay.pubend_names:
        parent.unregister_release_child(pubend, broker.name)  # type: ignore[union-attr]
    if isinstance(parent, IntermediateBroker):
        parent.forget_child(broker.name)
        parent._resend_release()
    if isinstance(broker, SubscriberHostingBroker):
        overlay.shbs.remove(broker)
    else:
        overlay.intermediates.remove(broker)  # type: ignore[arg-type]
    overlay.retired.append(broker)


def reparent_broker(
    overlay: Overlay,
    broker: Broker,
    new_parent: Broker,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
) -> Link:
    """Move ``broker`` (and its whole subtree) under ``new_parent``.

    Used when draining an intermediate: its children hop up to the
    grandparent.  The old uplink is severed and both sides unwired;
    the new link's restore hooks plus the child's eager
    ``_on_uplink_restored``-style resync (triggered here explicitly)
    re-warm the new parent's filter union and release state.
    """
    old_parent = overlay.parent_of(broker)
    if old_parent is not None:
        link = overlay.link_between(old_parent, broker)
        link.sever()
        overlay.links.remove(link)
        old_parent.unwire_child(broker.name)
        for pubend in overlay.pubend_names:
            old_parent.unregister_release_child(pubend, broker.name)  # type: ignore[union-attr]
        if isinstance(old_parent, IntermediateBroker):
            old_parent.forget_child(broker.name)
            old_parent._resend_release()
        broker.unwire_parent()
    new_link = Broker.connect(
        new_parent, broker, link_latency_ms, batch_window_ms=batch_window_ms
    )
    overlay.links.append(new_link)
    # The new parent's union for this child starts *empty* but wiring
    # marks it warm — it would D→S-filter every event the subtree's
    # existing subscriptions are owed until the refresh lands.  Cold
    # passes knowledge unfiltered (correct, merely unoptimized) until
    # the child's epoch sync below warms it.
    new_parent.child_filter_ready[broker.name] = False
    for pubend in overlay.pubend_names:
        new_parent.register_release_child(pubend, broker.name)  # type: ignore[union-attr]
    # Eager resync toward the new parent: refresh the subscription
    # union, re-report release floors, re-nack outstanding curiosity.
    broker._on_uplink_restored()
    return new_link


# ----------------------------------------------------------------------
# Scale topologies: wide/deep forests of PHB-rooted trees
# ----------------------------------------------------------------------
@dataclass
class Federation:
    """A forest of PHB-rooted trees sharing one scheduler.

    The dissemination tree is single-parent (every broker has exactly
    one uplink), so "multiple PHBs" is necessarily a *forest*: one tree
    per PHB, each owning a disjoint set of pubends.  Redundant paths
    live inside each tree as childless **spare** intermediates — warm
    standbys a subtree can be moved onto with :func:`reparent_broker`
    when a link or an intermediate fails.
    """

    scheduler: Scheduler
    trees: List[Overlay] = field(default_factory=list)
    #: Childless standby intermediates, per tree index and level
    #: (1-based): redundant-path failover targets for that level's
    #: subtrees.
    spares: Dict[Tuple[int, int], List[IntermediateBroker]] = field(
        default_factory=dict
    )

    @property
    def shbs(self) -> List[SubscriberHostingBroker]:
        return [shb for tree in self.trees for shb in tree.shbs]

    @property
    def pubend_names(self) -> List[str]:
        return sorted(p for tree in self.trees for p in tree.pubend_names)

    def all_brokers(self) -> List[Broker]:
        return [b for tree in self.trees for b in tree.all_brokers()]

    def shb_by_name(self, name: str) -> SubscriberHostingBroker:
        for tree in self.trees:
            for shb in tree.shbs:
                if shb.name == name:
                    return shb
        raise ConfigurationError(f"no SHB named {name}")

    def broker_by_name(self, name: str) -> Broker:
        for tree in self.trees:
            for broker in tree.all_brokers():
                if broker.name == name:
                    return broker
        raise ConfigurationError(f"no broker named {name}")

    def tree_of(self, broker: Broker) -> Overlay:
        for tree in self.trees:
            if broker in tree.all_brokers() or broker in tree.retired:
                return tree
        raise ConfigurationError(f"{broker.name} belongs to no tree")

    def fail_over(self, broker: Broker, spare: IntermediateBroker) -> Link:
        """Move ``broker``'s subtree onto a spare (redundant-path failover)."""
        tree = self.tree_of(broker)
        for level_spares in self.spares.values():
            if spare in level_spares:
                level_spares.remove(spare)
                break
        return reparent_broker(tree, broker, spare)


def build_deep_overlay(
    scheduler: Scheduler,
    n_trees: int = 1,
    pubends_per_tree: int = 1,
    fanout: Sequence[int] = (2,),
    shbs_per_leaf: int = 2,
    spares_per_level: int = 0,
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Federation:
    """A parameterized wide/deep forest, grown with the attach APIs.

    Each of ``n_trees`` trees is rooted at its own PHB (``phb1``,
    ``phb2``, ...) owning ``pubends_per_tree`` disjoint pubends
    (``p<tree>.<k>``).  ``fanout`` gives the branching at each
    intermediate level; every leaf-level intermediate then carries
    ``shbs_per_leaf`` SHBs.  ``fanout=()`` hangs the SHBs directly off
    the PHB (a star per tree).

    ``spares_per_level`` attaches that many *childless* intermediates
    at each level (round-robin over the level's parents): redundant
    paths kept cold (``child_filter_ready=False``) until a failover
    moves a subtree onto them via :meth:`Federation.fail_over`.

    ``build_deep_overlay(s, n_trees=2, fanout=(2, 3), shbs_per_leaf=4)``
    yields 2 trees × (1 PHB + 2 + 6 intermediates + 24 SHBs).  The
    whole forest is grown through :func:`attach_intermediate` /
    :func:`attach_shb` — the same code path a live join takes — so
    generated topologies exercise exactly the supervised-join wiring.
    """
    if n_trees < 1:
        raise ConfigurationError("need at least one tree")
    if shbs_per_leaf < 1:
        raise ConfigurationError("need at least one SHB per leaf")
    federation = Federation(scheduler)
    for k in range(n_trees):
        tag = f"t{k + 1}" if n_trees > 1 else ""
        phb = PublisherHostingBroker(
            scheduler, f"phb{k + 1}" if n_trees > 1 else "phb",
            cost_model=cost_model,
        )
        for j in range(pubends_per_tree):
            name = f"p{k + 1}.{j + 1}" if n_trees > 1 else f"p{j + 1}"
            phb.create_pubend(name, policy=policy)
        tree = Overlay(scheduler, phb)
        federation.trees.append(tree)
        prefix = f"{tag}." if tag else ""
        frontier: List[Broker] = [phb]
        for level, width in enumerate(fanout):
            next_frontier: List[Broker] = []
            for parent in frontier:
                for _ in range(width):
                    mid = attach_intermediate(
                        tree, f"{prefix}ib{len(tree.intermediates) + 1}",
                        parent=parent, cost_model=cost_model,
                        link_latency_ms=link_latency_ms,
                        batch_window_ms=batch_window_ms,
                    )
                    next_frontier.append(mid)
            for m in range(spares_per_level):
                spare = attach_intermediate(
                    tree, f"{prefix}spare{level + 1}.{m + 1}",
                    parent=frontier[m % len(frontier)], cost_model=cost_model,
                    link_latency_ms=link_latency_ms,
                    batch_window_ms=batch_window_ms,
                )
                federation.spares.setdefault((k, level + 1), []).append(spare)
            frontier = next_frontier
        for parent in frontier:
            for _ in range(shbs_per_leaf):
                attach_shb(
                    tree, f"{prefix}shb{len(tree.shbs) + 1}",
                    parent=parent, cost_model=cost_model,
                    link_latency_ms=link_latency_ms,
                    batch_window_ms=batch_window_ms,
                    **shb_kwargs,
                )
    return federation


def place_durable_subscribers(
    federation: Federation,
    n_subscribers: int,
    predicates: Sequence[object],
    seed: int = 0,
    prefix: str = "sub",
) -> Dict[str, List[str]]:
    """Deterministically place ``n_subscribers`` durable subscriptions.

    Each subscription ``{prefix}{i}`` is registered *headless* (no
    client session — see
    :meth:`SubscriberHostingBroker.register_durable`) at a seeded
    random SHB with a seeded random predicate from ``predicates``.
    Placement depends only on ``(seed, n_subscribers, len(predicates),
    SHB order)``, so two runs over identically built federations place
    identically.  Returns ``{shb name: [sub ids]}``.
    """
    shbs = federation.shbs
    if not shbs:
        raise ConfigurationError("federation has no SHBs")
    rng = random.Random(f"placement:{seed}")
    placed: Dict[str, List[str]] = {shb.name: [] for shb in shbs}
    n_shbs = len(shbs)
    n_preds = len(predicates)
    for i in range(n_subscribers):
        shb = shbs[rng.randrange(n_shbs)]
        predicate = predicates[rng.randrange(n_preds)]
        sub_id = f"{prefix}{i}"
        shb.register_durable(sub_id, predicate)
        placed[shb.name].append(sub_id)
    return placed
