"""Overlay topology builders.

Figure 3 of the paper shows the evaluation topologies: a single broker
(publisher and subscribers on one machine), a 2-broker network (PHB +
SHB), and 2-SHB / 4-SHB networks; the latency experiment uses a 5-hop
chain.  These builders assemble the corresponding broker trees, create
the pubends, wire the links and perform the release-protocol child
registration the aggregators require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.release import EarlyReleasePolicy
from ..net.link import Link
from ..net.node import Node
from ..net.simtime import Scheduler
from ..storage.disk import SimDisk
from ..util.errors import ConfigurationError
from .base import Broker
from .costs import CostModel
from .intermediate import IntermediateBroker
from .phb import PublisherHostingBroker
from .shb import SubscriberHostingBroker


@dataclass
class Overlay:
    """A built broker overlay plus its bookkeeping."""

    scheduler: Scheduler
    phb: PublisherHostingBroker
    shbs: List[SubscriberHostingBroker] = field(default_factory=list)
    intermediates: List[IntermediateBroker] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)

    @property
    def pubend_names(self) -> List[str]:
        return sorted(self.phb.pubends)

    def all_brokers(self) -> List[Broker]:
        return [self.phb, *self.intermediates, *self.shbs]

    def shb_by_name(self, name: str) -> SubscriberHostingBroker:
        for shb in self.shbs:
            if shb.name == name:
                return shb
        raise ConfigurationError(f"no SHB named {name}")


def _register_release_children(overlay: Overlay) -> None:
    """Register every downstream link as a release-aggregation child."""
    for pubend in overlay.pubend_names:
        for child in overlay.phb.child_names:
            overlay.phb.register_release_child(pubend, child)
        for broker in overlay.intermediates:
            for child in broker.child_names:
                broker.register_release_child(pubend, child)


def build_two_broker(
    scheduler: Scheduler,
    pubends: List[str],
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """The paper's 2-broker network: one PHB directly feeding one SHB."""
    return build_star(
        scheduler, pubends, n_shbs=1, policy=policy, cost_model=cost_model,
        link_latency_ms=link_latency_ms, batch_window_ms=batch_window_ms,
        **shb_kwargs,
    )


def build_star(
    scheduler: Scheduler,
    pubends: List[str],
    n_shbs: int,
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """One PHB with ``n_shbs`` SHB children (the scalability topologies).

    ``batch_window_ms`` configures batching on every broker link *and*
    on the SHBs (whose client links inherit it); 0 keeps the unbatched
    per-message paths everywhere.
    """
    if n_shbs < 1:
        raise ConfigurationError("need at least one SHB")
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    overlay = Overlay(scheduler, phb)
    for i in range(n_shbs):
        shb = SubscriberHostingBroker(
            scheduler, f"shb{i + 1}", pubends, cost_model=cost_model, **shb_kwargs
        )
        overlay.shbs.append(shb)
        overlay.links.append(
            Broker.connect(phb, shb, link_latency_ms, batch_window_ms=batch_window_ms)
        )
    _register_release_children(overlay)
    return overlay


def build_chain(
    scheduler: Scheduler,
    pubends: List[str],
    n_intermediates: int,
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """PHB → k intermediates → SHB (the 5-hop latency topology uses k=3:
    publisher→PHB, three broker hops, SHB→subscriber are the 5 hops)."""
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    overlay = Overlay(scheduler, phb)
    upstream: Broker = phb
    for i in range(n_intermediates):
        mid = IntermediateBroker(scheduler, f"ib{i + 1}", cost_model=cost_model)
        overlay.intermediates.append(mid)
        overlay.links.append(
            Broker.connect(upstream, mid, link_latency_ms, batch_window_ms=batch_window_ms)
        )
        upstream = mid
    shb = SubscriberHostingBroker(scheduler, "shb1", pubends, cost_model=cost_model, **shb_kwargs)
    overlay.shbs.append(shb)
    overlay.links.append(
        Broker.connect(upstream, shb, link_latency_ms, batch_window_ms=batch_window_ms)
    )
    _register_release_children(overlay)
    return overlay


def build_single_broker(
    scheduler: Scheduler,
    pubends: List[str],
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """The paper's 1-broker network: PHB and SHB roles on one machine.

    Both roles share a single :class:`~repro.net.node.Node` and a
    single disk, connected by a loopback link with negligible latency.
    The node gets a modest speed bump over a plain SHB: the testbed
    machines were 6-way SMPs, so publisher-side work overlaps with
    delivery work across processors instead of strictly serializing
    behind it as a single service queue would — this is what lets the
    paper observe that "the capacity of the 1 SHB network is similar to
    the 1 broker network".
    """
    node = Node(scheduler, "broker1", speed=1.35)
    disk = SimDisk(scheduler, "broker1-disk")
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model, node=node, disk=disk)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    shb = SubscriberHostingBroker(
        scheduler, "shb1", pubends, cost_model=cost_model, node=node, disk=disk, **shb_kwargs
    )
    overlay = Overlay(scheduler, phb, shbs=[shb])
    overlay.links.append(
        Broker.connect(phb, shb, latency_ms=0.05, batch_window_ms=batch_window_ms)
    )
    _register_release_children(overlay)
    return overlay


def build_tree(
    scheduler: Scheduler,
    pubends: List[str],
    fanout: List[int],
    policy: Optional[EarlyReleasePolicy] = None,
    cost_model: Optional[CostModel] = None,
    link_latency_ms: float = 1.0,
    batch_window_ms: float = 0.0,
    **shb_kwargs: object,
) -> Overlay:
    """A uniform tree: PHB → fanout[0] intermediates → ... → SHB leaves.

    ``fanout`` gives the branching at each internal level; the last
    level's children are SHBs.  ``build_tree(s, ps, [2, 2])`` yields a
    PHB, 2 intermediates and 4 SHBs.
    """
    if not fanout:
        raise ConfigurationError("fanout must have at least one level")
    shb_kwargs.setdefault("batch_window_ms", batch_window_ms)
    phb = PublisherHostingBroker(scheduler, "phb", cost_model=cost_model)
    for pubend in pubends:
        phb.create_pubend(pubend, policy=policy)
    overlay = Overlay(scheduler, phb)
    frontier: List[Broker] = [phb]
    for level, width in enumerate(fanout):
        is_leaf_level = level == len(fanout) - 1
        next_frontier: List[Broker] = []
        for parent in frontier:
            for j in range(width):
                if is_leaf_level:
                    name = f"shb{len(overlay.shbs) + 1}"
                    child: Broker = SubscriberHostingBroker(
                        scheduler, name, pubends, cost_model=cost_model, **shb_kwargs
                    )
                    overlay.shbs.append(child)  # type: ignore[arg-type]
                else:
                    name = f"ib{len(overlay.intermediates) + 1}"
                    child = IntermediateBroker(scheduler, name, cost_model=cost_model)
                    overlay.intermediates.append(child)  # type: ignore[arg-type]
                overlay.links.append(
                    Broker.connect(
                        parent, child, link_latency_ms, batch_window_ms=batch_window_ms
                    )
                )
                next_frontier.append(child)
        frontier = next_frontier
    _register_release_children(overlay)
    return overlay
