"""CPU cost model for simulated brokers and client machines.

The paper's quantitative results are throughput/latency consequences of
where CPU and disk time is spent.  This module centralizes the per-
operation service costs (in milliseconds of simulated CPU) charged to
:class:`~repro.net.node.Node` queues.

Calibration targets (see DESIGN.md §3):

* an SHB delivering to ~100 subscribers at 200 ev/s each saturates
  near the paper's 20K events/s — dominated by ``deliver_event_ms``,
* the PHB sits around 70% idle with 1 SHB and ~55–60% with 4
  (publish logging CPU + per-link dissemination),
* client machines comfortably sustain 1600 ev/s with headroom for the
  ~2–3x bursts during catchup (Figure 8).

The constants are deliberately simple: one number per operation class,
no per-byte terms except where the paper's effects need them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import messages as M


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU service costs, in milliseconds."""

    # --- broker-to-broker message receive costs -----------------------
    knowledge_base_ms: float = 0.02
    knowledge_per_event_ms: float = 0.012
    nack_ms: float = 0.05
    release_ms: float = 0.02
    subscription_ms: float = 0.05

    # --- PHB operations ------------------------------------------------
    publish_ms: float = 0.32          # accept + log-staging CPU per event
    serve_nack_per_event_ms: float = 0.004
    forward_per_link_event_ms: float = 0.06

    # --- SHB operations ------------------------------------------------
    deliver_event_ms: float = 0.0475  # enqueue one event to one subscriber
    #: Delivery through a *catchup* stream costs more than through the
    #: consolidated stream — each catchup subscriber runs its own
    #: knowledge/curiosity machinery.  The paper measures the effect
    #: directly: "the SHB rate reduces to about 10K events/s when all
    #: subscribers have a separate catchup stream (compared to 20K
    #: events/s with only the constream)".
    catchup_deliver_event_ms: float = 0.08
    deliver_control_ms: float = 0.01  # silence/gap enqueue
    pfs_write_cpu_ms: float = 0.005   # CPU part of one PFS record write
    client_ack_ms: float = 0.01
    client_connect_ms: float = 0.5

    # --- client machine operations --------------------------------------
    client_recv_event_ms: float = 0.08
    client_recv_control_ms: float = 0.01
    client_send_ms: float = 0.01

    def broker_recv_cost(self, msg: object) -> float:
        """Receive-side CPU cost of a broker-to-broker message."""
        if isinstance(msg, M.KnowledgeUpdate):
            return self.knowledge_base_ms + self.knowledge_per_event_ms * len(msg.d_events)
        if isinstance(msg, M.Nack):
            return self.nack_ms
        if isinstance(msg, M.ReleaseUpdate):
            return self.release_ms
        if isinstance(msg, (M.SubscriptionAdd, M.SubscriptionRemove)):
            return self.subscription_ms
        return 0.02

    def shb_client_recv_cost(self, msg: object) -> float:
        """SHB-side CPU cost of a message arriving from a client."""
        if isinstance(msg, M.AckCheckpoint):
            return self.client_ack_ms
        if isinstance(msg, (M.ConnectRequest, M.DisconnectRequest)):
            return self.client_connect_ms
        return 0.02

    def client_recv_cost(self, msg: object) -> float:
        """Client-machine CPU cost of a message from the SHB."""
        if isinstance(msg, M.EventMessage):
            return self.client_recv_event_ms
        return self.client_recv_control_ms


#: The default calibration used by all experiments.
DEFAULT_COSTS = CostModel()
