"""Intermediate brokers: caching, filtering and nack consolidation.

Section 3: *"Intermediate knowledge streams serve as caches of data
that increase scalability of recovery, by responding to nacks, and
curiosity streams consolidate nacks from multiple SHBs."*

An intermediate broker sits between the PHB and a set of children.  It
keeps a bounded in-memory knowledge cache per pubend; head knowledge is
forwarded downstream per child with D→S filtering against that child's
subscription union, and nacks from below are answered from the cache
where possible, consolidated (one upstream nack per range per retry
window) otherwise.  Nack replies arriving from upstream are routed only
to the children whose registered interest intersects them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core import messages as M
from ..core.curiosity import NackConsolidator
from ..metrics.trace import SPAN_INTERMEDIATE_FORWARD
from ..core.release import ReleaseAggregator
from ..core.tickmap import TickMap
from ..net.node import Node
from ..net.simtime import Scheduler
from ..util.intervals import IntervalSet
from .base import Broker
from .costs import CostModel


class _PubendRelay:
    """Per-pubend relay state at an intermediate broker."""

    def __init__(self, pubend: str, scheduler: Scheduler, cache_span_ms: int) -> None:
        self.pubend = pubend
        self.cache = TickMap()
        self.cache_span_ms = cache_span_ms
        self.consolidator = NackConsolidator(scheduler)
        self.release_agg = ReleaseAggregator(pubend)
        self.last_release_sent: Optional[Tuple[int, int]] = None
        #: Epoch carried on upstream ReleaseUpdates.  Bumped whenever
        #: the aggregate legitimately regresses (a child reported a
        #: migration-install regression under a bumped epoch of its
        #: own), so the parent's aggregator accepts the lower minima.
        self.upstream_epoch = 0
        #: Per-child contiguous forwarding horizon: ticks at or below it
        #: have already been offered to that child as head knowledge.
        self.sent_cursor: Dict[str, int] = {}
        #: Per-child refilter floor: the highest ``refilter_below`` any
        #: nack from that child has carried.  Nack replies routed back
        #: down must not D→S-filter events below it — the child is
        #: refiltering that span itself on behalf of a subscription our
        #: union may not (yet) include.  Monotone: keeping the floor
        #: after the catchup finishes only passes extra events the
        #: child asked about, never hides one.
        self.refilter_floor: Dict[str, int] = {}

    def trim_cache(self) -> None:
        frontier = self.cache.max_known()
        floor = frontier - self.cache_span_ms
        if floor > 0:
            self.cache.forget_below(floor)


class IntermediateBroker(Broker):
    """A pure relay: no pubends, no subscribers, just scalability."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        cost_model: Optional[CostModel] = None,
        speed: float = 1.0,
        node: Optional[Node] = None,
        cache_span_ms: int = 30_000,
        subscription_refresh_ms: float = 2_000.0,
        release_resend_ms: float = 1_000.0,
    ) -> None:
        super().__init__(scheduler, name, cost_model, speed, node)
        self.cache_span_ms = cache_span_ms
        self.subscription_refresh_ms = subscription_refresh_ms
        self.release_resend_ms = release_resend_ms
        self._relays: Dict[str, _PubendRelay] = {}
        self.cache_hits = 0
        self.cache_miss_ticks = 0
        # Lossy-link resilience: children refresh *us* with their own
        # epochs; we refresh the parent with ours (forwarding child
        # epochs verbatim would interleave several children's epoch
        # numbering on one uplink).  Releases are re-reported
        # periodically because the changed-aggregate dedup in
        # _on_release would otherwise never resend a lost update.
        self._upstream_refresh_due = False
        # Coverage-confirmation relay (see M.SubscriptionSynced): child
        # sync epochs awaiting a root-applied ack, and the mapping from
        # our own upstream refresh epochs to the child epochs each one
        # covers.  Volatile — a child whose ack dies with us retries
        # its confirmation refresh.
        self._pending_sync_acks: Dict[str, int] = {}
        self._cover_upstream: list = []  # (own_epoch, child, child_epoch)
        # Relays (and their upstream epochs) are volatile; after a
        # crash the rebuilt relays would restart at epoch 0 and the
        # parent — which remembers the pre-crash epoch — would discard
        # every report.  The floor, reset to the recovery time, keeps
        # post-recovery epochs monotone across the crash.
        self._release_epoch_floor = 0
        self.scheduler.every(self.subscription_refresh_ms, self._refresh_upstream)
        self.scheduler.every(self.release_resend_ms, self._resend_release)

    def _up_epoch(self, relay: _PubendRelay) -> int:
        return max(relay.upstream_epoch, self._release_epoch_floor)

    def _relay(self, pubend: str) -> _PubendRelay:
        relay = self._relays.get(pubend)
        if relay is None:
            relay = _PubendRelay(pubend, self.scheduler, self.cache_span_ms)
            for child in self.child_names:
                relay.release_agg.register_child(child)
                relay.sent_cursor[child] = 0
            self._relays[pubend] = relay
        return relay

    def register_release_child(self, pubend: str, child: str) -> None:
        """Topology hook mirroring the PHB's (idempotent)."""
        self._relay(pubend).release_agg.register_child(child)

    def unregister_release_child(self, pubend: str, child: str) -> None:
        """Drain hook: drop a detached child from the aggregate."""
        relay = self._relays.get(pubend)
        if relay is not None:
            relay.release_agg.unregister_child(child)

    def forget_child(self, child: str) -> None:
        """Purge all per-child relay state after a child detaches.

        Called by the topology detach path *after* the broker-level
        unwiring; leaves the relays consistent so a later re-attach of
        a same-named broker starts cold rather than inheriting cursors.
        """
        for relay in self._relays.values():
            relay.release_agg.unregister_child(child)
            relay.sent_cursor.pop(child, None)
            relay.refilter_floor.pop(child, None)
            relay.consolidator.drop_requester(child)
        self._pending_sync_acks.pop(child, None)
        self._cover_upstream = [
            t for t in self._cover_upstream if t[1] != child
        ]

    # ------------------------------------------------------------------
    # Downstream flow: knowledge from the parent
    # ------------------------------------------------------------------
    def _handle_from_parent(self, msg: object) -> None:
        if isinstance(msg, M.KnowledgeUpdate):
            self._on_knowledge(msg)
        elif isinstance(msg, M.SubscriptionSynced):
            self._on_cover_ack(msg.epoch)

    def _on_cover_ack(self, epoch: int) -> None:
        """A refresh of ours is applied root-to-here; ack the children
        whose confirmation requests it covered.

        Each child ack rides the CPU queue so it stays behind knowledge
        already relayed to that child — the per-hop FIFO argument in
        :class:`~repro.core.messages.SubscriptionSynced` composes down
        the chain.
        """
        due = [(c, ce) for (e, c, ce) in self._cover_upstream if e <= epoch]
        self._cover_upstream = [t for t in self._cover_upstream if t[0] > epoch]
        for child, child_epoch in due:
            ack = M.SubscriptionSynced(child_epoch)
            self.node.submit(
                0.02, lambda c=child, a=ack: self.send_to_child(c, a)
            )

    def _on_knowledge(self, update: M.KnowledgeUpdate) -> None:
        relay = self._relay(update.pubend)
        # Cache everything (bounded).
        for start, end in update.l_ranges:
            relay.cache.set_lost_below(end + 1)
        for start, end in update.s_ranges:
            relay.cache.set_s(start, end)
        for event in update.d_events:
            relay.cache.set_d(event.timestamp, event)
        relay.trim_cache()
        hi = update.max_tick()
        if hi is None:
            return
        t0 = self.scheduler.now  # relay intake time, for forward spans
        for child in self.child_names:
            cursor = relay.sent_cursor.get(child, 0)
            old, new = M.split_update(update, cursor)
            if not new.is_empty():
                filtered = self._filter_for_child(child, new)
                relay.sent_cursor[child] = max(cursor, hi)
                cost = self.costs.forward_per_link_event_ms * max(1, len(new.d_events))

                def job(c=child, u=filtered, t0=t0) -> None:
                    self._trace_forward(u, t0, SPAN_INTERMEDIATE_FORWARD)
                    self.send_to_child(c, u)

                self.node.submit(cost, job)
            if not old.is_empty():
                self._route_old_knowledge(relay, child, old)
        # Interest satisfied for everything this update covered.
        covered = IntervalSet(update.s_ranges + update.l_ranges)
        for event in update.d_events:
            covered.add(event.timestamp)
        relay.consolidator.satisfy_set(covered)

    def _route_old_knowledge(self, relay: _PubendRelay, child: str, old: M.KnowledgeUpdate) -> None:
        """Send the parts of an old update the child actually asked for."""
        interest = relay.consolidator.interest_of(child)
        if not interest:
            return
        pieces = M.clip_update_to_set(old, interest)
        if not pieces.is_empty():
            filtered = self._filter_for_child(
                child, pieces, keep_below=relay.refilter_floor.get(child, 0)
            )
            cost = self.costs.forward_per_link_event_ms * max(1, len(pieces.d_events))
            t0 = self.scheduler.now

            def job(c=child, u=filtered, t0=t0) -> None:
                self._trace_forward(u, t0, SPAN_INTERMEDIATE_FORWARD)
                self.send_to_child(c, u)

            self.node.submit(cost, job)

    def _filter_for_child(
        self, child: str, update: M.KnowledgeUpdate, keep_below: int = 0
    ) -> M.KnowledgeUpdate:
        # A cold union (post-recovery, pre-resync) must not filter.
        # ``keep_below``: refilter-span replies pass unfiltered — the
        # child refilters them against the roaming subscription itself
        # (see PublisherHostingBroker._filter_for_child).
        if not self.child_filter_ready.get(child, True):
            return update
        engine = self.child_engines[child]
        if engine.accepts_all() and len(update.s_ranges) <= 1 and len(update.l_ranges) <= 1:
            # A wildcard below this link with nothing to coalesce: the
            # filtered update would be a field-for-field copy, so ship
            # the shared instance instead of allocating one per child
            # (nothing on the receive path mutates a payload).
            return update
        out = M.KnowledgeUpdate(update.pubend)
        out.s_ranges = list(update.s_ranges)
        out.l_ranges = list(update.l_ranges)
        if engine.accepts_all():
            # A wildcard below this link: every D tick passes, no need
            # to consult the aggregate per event.
            out.d_events = list(update.d_events)
            return out.coalesce()
        # Classify the whole coalesced tick-range in one aggregate pass;
        # keep_below events skip classification entirely.
        pending = [e for e in update.d_events if e.timestamp >= keep_below]
        flags = iter(engine.matches_any_batch([e.attributes for e in pending]))
        for event in update.d_events:
            if event.timestamp < keep_below or next(flags):
                out.d_events.append(event)
            else:
                out.s_ranges.append((event.timestamp, event.timestamp))
        # Filtering appends one single-tick S range per suppressed event;
        # a run of non-matching events ships as one range instead.
        return out.coalesce()

    # ------------------------------------------------------------------
    # Upstream flow: nacks, release, subscriptions from children
    # ------------------------------------------------------------------
    def _handle_from_child(self, child: str, msg: object) -> None:
        if isinstance(msg, M.Nack):
            self._on_nack(child, msg)
        elif isinstance(msg, M.ReleaseUpdate):
            self._on_release(child, msg)
        elif isinstance(msg, M.SubscriptionAdd):
            self._on_subscription_add(child, msg)
            if msg.epoch is None:
                # Immediate adds still propagate straight up; epoch-
                # tagged refresh adds are covered by _refresh_upstream.
                self.send_up(msg)
        elif isinstance(msg, M.SubscriptionRemove):
            self._on_subscription_remove(child, msg)
            self.send_up(msg)
        elif isinstance(msg, M.SubscriptionSync):
            warmed = self._on_subscription_sync(child, msg)
            if (
                msg.want_ack
                and msg.epoch is not None
                and self._applied_sub_epoch.get(child, -1) >= msg.epoch
            ):
                # The child wants root-applied confirmation: remember
                # its epoch; the next upstream refresh carries it.
                prev = self._pending_sync_acks.get(child, -1)
                self._pending_sync_acks[child] = max(prev, msg.epoch)
            # This broker's own union is complete only once every
            # child has re-synced; then tell the parent.
            if warmed and all(self.child_filter_ready.values()):
                if msg.epoch is None:
                    total = sum(len(e) for e in self.child_engines.values())
                    self.send_up(M.SubscriptionSync(total))
                elif self._upstream_refresh_due or self._pending_sync_acks:
                    # First full warm-up after our recovery — or a
                    # confirmation waiting — push the verified union up
                    # now rather than next interval.
                    self._refresh_upstream()

    def _on_nack(self, child: str, nack: M.Nack) -> None:
        relay = self._relay(nack.pubend)
        if nack.refilter_below > relay.refilter_floor.get(child, 0):
            relay.refilter_floor[child] = nack.refilter_below
        wanted = IntervalSet(nack.ranges)
        # Answer from the cache first.  Ticks below the nack's refilter
        # boundary must not be cache-served: this cache's S ticks were
        # filtered under a subscription union that may not include the
        # (roaming) requester — only the pubend may answer those.
        reply = M.KnowledgeUpdate(nack.pubend)
        unresolved = IntervalSet()
        for iv in wanted:
            cacheable_start = max(iv.start, nack.refilter_below)
            if cacheable_start > iv.start:
                unresolved.add(iv.start, min(iv.end, cacheable_start - 1))
            if cacheable_start > iv.end:
                continue
            d_events, s_ranges, l_ranges, q_set = relay.cache.classify_within(
                cacheable_start, iv.end
            )
            reply.d_events.extend(d_events)
            reply.s_ranges.extend(s_ranges)
            reply.l_ranges.extend(l_ranges)
            unresolved.update(q_set)
        reply.coalesce()
        if not reply.is_empty():
            self.cache_hits += 1
            filtered = self._filter_for_child(
                child, reply, keep_below=relay.refilter_floor.get(child, 0)
            )
            cost = self.costs.serve_nack_per_event_ms * max(1, len(reply.d_events))
            t0 = self.scheduler.now

            def job(filtered=filtered, t0=t0) -> None:
                self._trace_forward(filtered, t0, SPAN_INTERMEDIATE_FORWARD)
                self.send_to_child(child, filtered)

            self.node.submit(cost, job)
        if unresolved:
            self.cache_miss_ticks += unresolved.tick_count()
            relay.consolidator.register(child, unresolved)
            due = relay.consolidator.to_forward(unresolved)
            if due:
                self.send_up(
                    M.Nack(nack.pubend, due.as_tuples(), refilter_below=nack.refilter_below)
                )

    def _on_release(self, child: str, msg: M.ReleaseUpdate) -> None:
        relay = self._relay(msg.pubend)
        relay.release_agg.update(child, msg.released, msg.latest_delivered, epoch=msg.epoch)
        agg = relay.release_agg.aggregate()
        if agg is not None and agg != relay.last_release_sent:
            prev = relay.last_release_sent
            if prev is not None and (agg[0] < prev[0] or agg[1] < prev[1]):
                # A child's epoch bump lowered the aggregate; bump our
                # own upstream epoch so the parent accepts it too.
                relay.upstream_epoch = max(relay.upstream_epoch + 1, int(self.scheduler.now))
            relay.last_release_sent = agg
            self.send_up(
                M.ReleaseUpdate(msg.pubend, agg[0], agg[1], epoch=self._up_epoch(relay))
            )

    # ------------------------------------------------------------------
    # Lossy-link resilience (periodic upstream re-sync)
    # ------------------------------------------------------------------
    def _refresh_upstream(self) -> None:
        """Re-send the whole subscription union upstream, epoch-tagged.

        Skipped while any child is cold: an incomplete union must not
        warm the parent (it would filter events the cold child needs).
        """
        if self._parent_send is None or self.node.is_down:
            return
        if not self.child_filter_ready or not all(self.child_filter_ready.values()):
            return
        self._upstream_refresh_due = False
        epoch = self._next_sub_epoch()
        count = 0
        for engine in self.child_engines.values():
            for sub_id in engine.subscription_ids():
                self.send_up(
                    M.SubscriptionAdd(sub_id, engine.filter_of(sub_id), epoch=epoch)
                )
                count += 1
        want_ack = bool(self._pending_sync_acks)
        self.send_up(M.SubscriptionSync(count, epoch=epoch, want_ack=want_ack))
        if want_ack:
            # This refresh covers every child confirmation collected so
            # far: when the parent acks our epoch, theirs are answered.
            for child, child_epoch in self._pending_sync_acks.items():
                self._cover_upstream.append((epoch, child, child_epoch))
            self._pending_sync_acks.clear()

    def _resend_release(self) -> None:
        if self.node.is_down:
            return
        for pubend, relay in self._relays.items():
            agg = relay.release_agg.aggregate()
            if agg is not None:
                prev = relay.last_release_sent
                if prev is not None and (agg[0] < prev[0] or agg[1] < prev[1]):
                    relay.upstream_epoch = max(
                        relay.upstream_epoch + 1, int(self.scheduler.now)
                    )
                relay.last_release_sent = agg
                self.send_up(
                    M.ReleaseUpdate(pubend, agg[0], agg[1], epoch=self._up_epoch(relay))
                )

    # ------------------------------------------------------------------
    # Failure handling: an intermediate has no persistent state
    # ------------------------------------------------------------------
    def _on_node_recover(self) -> None:
        self._relays.clear()
        self._upstream_refresh_due = True
        # Confirmation state died with the node; children whose acks
        # were in flight re-request via their install retries.
        self._pending_sync_acks.clear()
        self._cover_upstream.clear()
        # Rebuilt relays restart at epoch 0; keep upstream epochs
        # monotone across the crash so the parent accepts our reports.
        self._release_epoch_floor = int(self.scheduler.now)

    def _on_uplink_restored(self) -> None:
        """Partition toward the parent healed: re-sync eagerly."""
        if self.node.is_down:
            return
        self._refresh_upstream()
        self._resend_release()
        for relay in self._relays.values():
            # Forwards suppressed as "already asked" died with the old
            # connection; let the next child nack go straight up.
            relay.consolidator.reset_suppression()
