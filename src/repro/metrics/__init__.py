"""Metrics: windowed series sampling, latency histograms and tracing.

* :mod:`~repro.metrics.collector` — periodic probe sampling (the
  paper's time-series figures);
* :mod:`~repro.metrics.histogram` — fixed-bucket log-scale latency
  histograms (mergeable, percentile-capable);
* :mod:`~repro.metrics.trace` — sampled end-to-end event tracing with
  per-hop spans;
* :mod:`~repro.metrics.report` — plain-text tables and the structured
  JSON export.
"""

from .collector import MetricsCollector
from .histogram import BUCKET_FACTOR, LatencyHistogram
from .report import export_json, format_table, percentile, summarize_series
from .trace import EventTracer, Span, Trace, event_tracer, install_tracer

__all__ = [
    "BUCKET_FACTOR",
    "EventTracer",
    "LatencyHistogram",
    "MetricsCollector",
    "Span",
    "Trace",
    "event_tracer",
    "export_json",
    "format_table",
    "install_tracer",
    "percentile",
    "summarize_series",
]
