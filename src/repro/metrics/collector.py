"""Periodic metric sampling against the simulation clock.

The paper's figures are all time series sampled from a running system:
aggregate event rates (Figures 4 and 8), catchup durations (Figure 5),
tick-advance rates of latestDelivered/released (Figures 6 and 7) and
CPU idle percentages (Figure 8).  :class:`MetricsCollector` registers
probes of those four shapes and samples them on a fixed interval.

Sampling discipline: every windowed probe (rates, ratios, idle
fractions, latency windows) is *primed* when the collector starts —
the baseline is taken at start time, and the first sample lands one
full interval later.  A collector started mid-run therefore never
reports a first window diluted over ``[0, start]``, and windows with
nothing to report (a zero denominator, no new latency samples) are
skipped rather than recorded as a fabricated ``0.0``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.node import Node
from ..net.simtime import PeriodicHandle, Scheduler
from ..util.rate import GaugeRate, Series
from .histogram import LatencyHistogram


class MetricsCollector:
    """Samples registered probes every ``interval_ms`` of virtual time."""

    def __init__(self, scheduler: Scheduler, interval_ms: float = 1000.0) -> None:
        self.scheduler = scheduler
        self.interval_ms = interval_ms
        self.series: Dict[str, Series] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        self._probes: List[Callable[[float], None]] = []
        self._primers: List[Callable[[float], None]] = []
        self._timer: Optional[PeriodicHandle] = None

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def _series(self, name: str) -> Series:
        if name not in self.series:
            self.series[name] = Series(name)
        return self.series[name]

    def _register_primer(self, primer: Callable[[float], None]) -> None:
        """Primers set window baselines at ``start()``; a probe added to
        an already-running collector is primed immediately instead."""
        if self._timer is not None:
            primer(self.scheduler.now)
        else:
            self._primers.append(primer)

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` directly (e.g. queue depths, counts)."""
        series = self._series(name)
        self._probes.append(lambda now: series.append(now, fn()))

    def counter_rate(self, name: str, fn: Callable[[], float]) -> None:
        """Sample the per-second rate of a cumulative counter.

        This is how the aggregate events/s plots are produced: ``fn``
        returns a total (e.g. events consumed) and the series records
        the window rate.
        """
        series = self._series(name)
        tracker = GaugeRate(name)

        def probe(now: float) -> None:
            value = tracker.sample(now, fn())
            if value is not None:
                series.append(now, value)

        self._probes.append(probe)
        self._register_primer(lambda now: tracker.prime(now, fn()))

    def advance_rate(self, name: str, fn: Callable[[], float]) -> None:
        """Sample how fast a monotone gauge advances (tick-ms per second).

        Figure 6/7's latestDelivered(p) and released(p) plots.
        """
        self.counter_rate(name, fn)  # identical mechanics, distinct intent

    def cpu_idle(self, name: str, node: Node) -> None:
        """Sample a node's CPU idle fraction over each window (Figure 8)."""
        series = self._series(name)
        self._probes.append(lambda now: series.append(now, node.busy.idle_fraction(now)))
        self._register_primer(lambda now: node.busy.prime(now))

    def ratio(
        self, name: str, numerator: Callable[[], float], denominator: Callable[[], float]
    ) -> None:
        """Sample the windowed ratio of two cumulative counters.

        The batching report series are all of this shape: mean batch
        size (messages / transmissions), messages-per-event
        (transmissions / events published) and coalescing ratio (ticks /
        ranges).  Each sample covers only the window since the previous
        one, so the series shows the live ratio, not the lifetime mean.
        A window in which the denominator did not move (e.g. a
        partitioned link transmits nothing) has no ratio and is skipped
        — recording ``0.0`` would conflate an idle window with a
        genuine zero ratio and skew ``summarize_series`` means.
        """
        series = self._series(name)
        num_t = GaugeRate(f"{name}.num")
        den_t = GaugeRate(f"{name}.den")

        def probe(now: float) -> None:
            dn = num_t.sample(now, numerator())
            dd = den_t.sample(now, denominator())
            if dn is None or dd is None or dd == 0.0:
                return
            series.append(now, dn / dd)

        self._probes.append(probe)

        def primer(now: float) -> None:
            num_t.prime(now, numerator())
            den_t.prime(now, denominator())

        self._register_primer(primer)

    def histogram(self, name: str, hist: Optional[LatencyHistogram] = None) -> LatencyHistogram:
        """Register a :class:`LatencyHistogram` for export.

        Pass an externally-fed histogram (e.g. one of the tracer's), or
        omit it to have one created.  Histograms are not sampled on the
        interval — they accumulate wherever they are fed — but they
        ride along in :func:`repro.metrics.report.export_json`.
        """
        if hist is None:
            hist = self.histograms.get(name) or LatencyHistogram(name)
        self.histograms[name] = hist
        return hist

    def latency(self, name: str, fn: Callable[[], List[float]]) -> LatencyHistogram:
        """Consume a growing list of latency samples (ms) each interval.

        ``fn`` returns a cumulative sample list (e.g. a pubend's
        ``log_latency_ms``); each interval the new suffix is folded into
        a registered histogram and the window's mean is appended to the
        series ``name``.  Windows with no new samples are skipped.
        Samples recorded before the collector starts are not counted.
        """
        series = self._series(name)
        hist = self.histogram(name)
        state = {"seen": 0}

        def probe(now: float) -> None:
            values = fn()
            fresh = values[state["seen"]:]
            state["seen"] = len(values)
            if not fresh:
                return
            for v in fresh:
                hist.observe(v)
            series.append(now, sum(fresh) / len(fresh))

        self._probes.append(probe)
        self._register_primer(lambda now: state.__setitem__("seen", len(fn())))
        return hist

    def link_batching(self, scheduler: Scheduler, events_published: Callable[[], float]) -> None:
        """Register the standard batching series from the scheduler's
        shared :class:`~repro.net.link.LinkStats`: ``link.batch_size``
        (messages per transmission) and ``link.msgs_per_event``
        (transmissions per published event)."""
        from ..net.link import link_stats

        stats = link_stats(scheduler)
        self.ratio(
            "link.batch_size", lambda: stats.messages, lambda: stats.transmissions
        )
        self.ratio(
            "link.msgs_per_event", lambda: stats.transmissions, events_published
        )

    def link_faults(self, scheduler: Scheduler) -> None:
        """Register the injected-fault counters from the scheduler's
        shared :class:`~repro.net.link.LinkStats`: messages dropped by
        fault injection, dropped for failing their frame CRC, duplicated
        and reordered (plus teardown drops under ``link.dropped``)."""
        from ..net.link import link_stats

        stats = link_stats(scheduler)
        self.gauge("link.fault_dropped", lambda: float(stats.fault_dropped))
        self.gauge("link.corrupt_dropped", lambda: float(stats.corrupt_dropped))
        self.gauge("link.duplicated", lambda: float(stats.duplicated))
        self.gauge("link.reordered", lambda: float(stats.reordered))
        self.gauge("link.dropped", lambda: float(stats.dropped))

    def matcher(self, prefix: str, engine) -> None:
        """Register the counting-matcher series for one engine:

        * ``<prefix>.atoms_per_event`` — index probes per match call
          (the counting matcher's unit of work);
        * ``<prefix>.candidates_per_event`` — subscriptions whose
          satisfied-atom count was touched, per match call;
        * ``<prefix>.residual_evals_per_event`` — opaque predicate
          evaluations per match call (scan-bucket + residual pressure);
        * ``<prefix>.scan_subs`` — subscriptions resident in the opaque
          scan bucket;
        * ``<prefix>.aggregate_active`` — covering signatures actually
          consulted by ``matches_any`` (vs. registered subscriptions).
        """
        events = lambda: float(engine.events_processed)  # noqa: E731
        self.ratio(
            f"{prefix}.atoms_per_event", lambda: float(engine.atoms_examined), events
        )
        self.ratio(
            f"{prefix}.candidates_per_event",
            lambda: float(engine.candidates_seen),
            events,
        )
        self.ratio(
            f"{prefix}.residual_evals_per_event",
            lambda: float(engine.residual_evals),
            events,
        )
        self.gauge(f"{prefix}.scan_subs", lambda: float(engine.scan_count))
        self.gauge(
            f"{prefix}.aggregate_active", lambda: float(engine.aggregate_active)
        )

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer is None:
            now = self.scheduler.now
            for primer in self._primers:
                primer(now)
            self._primers = []
            self._timer = self.scheduler.every(self.interval_ms, self._sample)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self) -> None:
        now = self.scheduler.now
        for probe in self._probes:
            probe(now)

    def get(self, name: str) -> Series:
        """The series registered as ``name``.

        Raises :class:`KeyError` for unknown names — a misspelled name
        used to fabricate an empty series silently, which made typos in
        experiment report code look like flat-zero measurements.
        """
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(
                f"no metric series named {name!r}; registered: {sorted(self.series)}"
            ) from None
