"""Sampled end-to-end event tracing (publish → hop spans → consume).

The broker overlay is a dataflow graph (Gryphon's information-flow
framing); a trace mirrors one event's path through it.  A publish that
the seeded sampler selects gets a ``trace_id``; every hop then records
a :class:`Span` against the event id:

* ``publish.accept``       client publish → PHB accepts (CPU queue)
* ``phb.log``              event staged → durably logged at the pubend
* ``phb.forward``          durable → handed to the downlink
* ``intermediate.forward`` relay intake → handed to the next downlink
* ``shb.match``            SHB intake → constream matched the event
* ``catchup.resolve``      SHB intake → catchup stream released the event
* ``deliver.constream``    delivery enqueued → sent on the client link
* ``deliver.catchup``      same, via a catchup stream
* ``client.consume``       publish → the subscriber consumed the event

Span closures feed per-span :class:`~repro.metrics.histogram.
LatencyHistogram` instances, plus two end-to-end histograms keyed by
how the event reached each subscriber: ``e2e.publish_deliver``
(consolidated stream) and ``e2e.catchup_lag`` (catchup after a
reconnect; the lag includes the disconnected span, which is the
quantity a reconnecting durable subscriber experiences).

Determinism: the tracer is a pure observer.  It schedules no events,
sends no messages, and with ``sample_rate=0`` (the default) draws no
random numbers — transcripts and determinism digests are byte-identical
whether or not a tracer is installed.  Sampling decisions use a private
``random.Random(f"trace:{seed}")`` so a sampled run is itself exactly
reproducible and perturbs no scenario RNG.

Installation: the tracer is a per-scheduler singleton (the same pattern
as :func:`repro.net.link.link_stats`).  Components cache the accessor's
result at construction; :func:`install_tracer` therefore *reconfigures*
the existing singleton in place, so it works whether it is called
before or after the topology is built.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..net.simtime import Scheduler
from .histogram import LatencyHistogram

# Span taxonomy (one constant per hop; see module docstring).
SPAN_PUBLISH = "publish.accept"
SPAN_PHB_LOG = "phb.log"
SPAN_PHB_FORWARD = "phb.forward"
SPAN_INTERMEDIATE_FORWARD = "intermediate.forward"
SPAN_SHB_MATCH = "shb.match"
SPAN_CATCHUP_RESOLVE = "catchup.resolve"
SPAN_DELIVER_CONSTREAM = "deliver.constream"
SPAN_DELIVER_CATCHUP = "deliver.catchup"
SPAN_CLIENT_CONSUME = "client.consume"

# End-to-end histograms, split by delivery mode per subscriber.
E2E_PUBLISH_DELIVER = "e2e.publish_deliver"
E2E_CATCHUP_LAG = "e2e.catchup_lag"


@dataclass
class Span:
    """One hop of a traced event's path."""

    name: str
    node: str
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class Trace:
    """All recorded spans for one sampled event."""

    trace_id: int
    event_id: str
    pubend: str
    start_ms: float
    spans: List[Span] = field(default_factory=list)
    #: Subscribers this event reached through a catchup stream; used to
    #: classify each subscriber's end-to-end observation (the same event
    #: can reach one subscriber live and another via catchup).
    catchup_subs: Set[str] = field(default_factory=set)
    consumes: int = 0


class EventTracer:
    """Per-scheduler sampling tracer (see module docstring)."""

    def __init__(
        self,
        scheduler: Scheduler,
        sample_rate: float = 0.0,
        seed: int = 0,
        max_traces: int = 8192,
    ) -> None:
        self.scheduler = scheduler
        self.sample_rate = 0.0
        self.seed = seed
        self.max_traces = max_traces
        self._rng = random.Random()
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._arrivals: Dict[str, float] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.started = 0
        self.consumed = 0
        self.evicted = 0
        self._next_id = 1
        self.configure(sample_rate=sample_rate, seed=seed, max_traces=max_traces)

    def configure(
        self,
        sample_rate: float,
        seed: int = 0,
        max_traces: int = 8192,
    ) -> None:
        """(Re)arm the tracer; resets all recorded state and the RNG."""
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.seed = seed
        self.max_traces = max_traces
        self._rng = random.Random(f"trace:{seed}")
        self._traces = OrderedDict()
        self._arrivals = {}
        self.histograms = {}
        self.started = 0
        self.consumed = 0
        self.evicted = 0
        self._next_id = 1

    # ------------------------------------------------------------------
    # State predicates (hot-path guards)
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Sampling is on (publish sites consult this before drawing)."""
        return self.sample_rate > 0.0

    @property
    def tracing(self) -> bool:
        """At least one live trace exists (hop sites guard on this)."""
        return bool(self._traces)

    def is_traced(self, event_id: str) -> bool:
        return event_id in self._traces

    def trace_of(self, event_id: str) -> Optional[Trace]:
        return self._traces.get(event_id)

    def traces(self) -> List[Trace]:
        return list(self._traces.values())

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _hist(self, name: str) -> LatencyHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram(name)
        return hist

    def begin(self, event, start_ms: Optional[float] = None) -> bool:
        """Sampling decision at publish; returns True iff traced.

        ``start_ms`` is the client-side publish time when known (it may
        precede the PHB accepting the event off its CPU queue); the
        trace's end-to-end clock starts there.
        """
        if self.sample_rate <= 0.0:
            return False
        if self._rng.random() >= self.sample_rate:
            return False
        start = self.scheduler.now if start_ms is None else start_ms
        trace = Trace(self._next_id, event.event_id, event.pubend, start)
        self._next_id += 1
        self.started += 1
        self._traces[event.event_id] = trace
        while len(self._traces) > self.max_traces:
            evicted_id, _ = self._traces.popitem(last=False)
            self._arrivals.pop(evicted_id, None)
            self.evicted += 1
        return True

    def add_span(
        self,
        event_id: str,
        name: str,
        node: str,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
    ) -> None:
        trace = self._traces.get(event_id)
        if trace is None:
            return
        end = self.scheduler.now if end_ms is None else end_ms
        start = end if start_ms is None else start_ms
        trace.spans.append(Span(name, node, start, end))
        self._hist(name).observe(end - start)

    def mark_events(
        self,
        events: Iterable[object],
        name: str,
        node: str,
        start_ms: Optional[float] = None,
    ) -> None:
        """Record one span per traced event in a forwarded batch."""
        if not self._traces:
            return
        for event in events:
            self.add_span(event.event_id, name, node, start_ms=start_ms)

    def note_arrival(self, event_id: str, now_ms: Optional[float] = None) -> None:
        """Memo an SHB intake time so the match span has a start."""
        if event_id in self._traces:
            self._arrivals[event_id] = (
                self.scheduler.now if now_ms is None else now_ms
            )

    def on_match(self, event_id: str, node: str) -> None:
        """Constream matched the event (span: SHB arrival → now)."""
        if event_id not in self._traces:
            return
        start = self._arrivals.pop(event_id, None)
        self.add_span(event_id, SPAN_SHB_MATCH, node, start_ms=start)

    def on_catchup_resolve(self, event_id: str, node: str) -> None:
        """A catchup stream handed the event off for delivery.

        The span runs from SHB intake (the same arrival memo the match
        span uses) to now, so it captures in-order head-of-line wait:
        an event that arrived early but had to wait for earlier ticks
        before the catchup stream could release it.
        """
        if event_id not in self._traces:
            return
        start = self._arrivals.pop(event_id, None)
        self.add_span(event_id, SPAN_CATCHUP_RESOLVE, node, start_ms=start)

    def on_deliver(
        self, event_id: str, sub_id: str, via_catchup: bool, start_ms: float
    ) -> None:
        """The event left the SHB toward ``sub_id`` (span: enqueue → send)."""
        trace = self._traces.get(event_id)
        if trace is None:
            return
        if via_catchup:
            trace.catchup_subs.add(sub_id)
            self.add_span(event_id, SPAN_DELIVER_CATCHUP, sub_id, start_ms=start_ms)
        else:
            self.add_span(event_id, SPAN_DELIVER_CONSTREAM, sub_id, start_ms=start_ms)

    def on_consume(self, event_id: str, sub_id: str) -> None:
        """The subscriber consumed the event: close the end-to-end span."""
        trace = self._traces.get(event_id)
        if trace is None:
            return
        now = self.scheduler.now
        trace.consumes += 1
        self.consumed += 1
        self.add_span(event_id, SPAN_CLIENT_CONSUME, sub_id, start_ms=trace.start_ms)
        e2e_name = (
            E2E_CATCHUP_LAG if sub_id in trace.catchup_subs else E2E_PUBLISH_DELIVER
        )
        self._hist(e2e_name).observe(now - trace.start_ms)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return {
            "sample_rate": self.sample_rate,
            "seed": self.seed,
            "traces_started": self.started,
            "consumes_observed": self.consumed,
            "traces_evicted": self.evicted,
            "histograms": {
                name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)
            },
        }


def event_tracer(scheduler: Scheduler) -> EventTracer:
    """The shared :class:`EventTracer` for ``scheduler`` (lazy, default
    off).  Every traced component calls this once at construction — the
    same per-scheduler-singleton pattern as ``link_stats``."""
    tracer = getattr(scheduler, "_event_tracer", None)
    if tracer is None:
        tracer = EventTracer(scheduler)
        scheduler._event_tracer = tracer  # type: ignore[attr-defined]
    return tracer


def install_tracer(
    scheduler: Scheduler,
    sample_rate: float,
    seed: int = 0,
    max_traces: int = 8192,
) -> EventTracer:
    """Arm ``scheduler``'s tracer with a sampling rate and seed.

    Reconfigures the singleton in place, so components that already
    cached it (topology built first) observe the new rate too.
    """
    tracer = event_tracer(scheduler)
    tracer.configure(sample_rate=sample_rate, seed=seed, max_traces=max_traces)
    return tracer
