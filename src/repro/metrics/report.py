"""Plain-text reporting for experiment results.

Benchmarks print the same rows/series the paper reports; these helpers
keep the formatting consistent: fixed-width tables, series summaries
and simple sparkline-ish dumps for time series.
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..util.rate import Series

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .collector import MetricsCollector
    from .trace import EventTracer


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned fixed-width table with a title rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    print()
    print(format_table(title, headers, rows))


def summarize_series(series: Series, skip_warmup: int = 0) -> dict:
    """Mean/min/max summary of a series, optionally dropping warmup points."""
    points = series.points[skip_warmup:]
    values = [v for _t, v in points]
    if not values:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }


def format_series(series: Series, every: int = 1, unit: str = "") -> str:
    """Dump a series as ``t=...s  value`` lines (downsampled)."""
    lines = [f"series {series.name}:"]
    for i, (t, v) in enumerate(series.points):
        if i % every == 0:
            lines.append(f"  t={t / 1000.0:9.1f}s  {v:12.1f} {unit}")
    return "\n".join(lines)


def export_json(
    collector: "MetricsCollector",
    path: Optional[Union[str, pathlib.Path]] = None,
    tracer: Optional["EventTracer"] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Structured JSON export of a collector (and optionally a tracer).

    The document is the machine-readable companion of the plain-text
    tables: every registered series (points + summary), every registered
    histogram snapshot, the tracer's span/e2e histograms when given, and
    an ``extra`` dict for experiment-specific headline numbers.  When
    ``path`` is given the document is also written there (pretty-printed
    with sorted keys, so exports diff cleanly); CI uploads the bench
    export as a workflow artifact.
    """
    doc: dict = {
        "series": {
            name: {
                "points": [[t, v] for t, v in series.points],
                "summary": summarize_series(series),
            }
            for name, series in sorted(collector.series.items())
        },
        "histograms": {
            name: hist.snapshot()
            for name, hist in sorted(collector.histograms.items())
        },
    }
    if tracer is not None:
        doc["trace"] = tracer.snapshot()
    if extra:
        doc["extra"] = dict(extra)
    if path is not None:
        pathlib.Path(path).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
    return doc


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (pct in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if pct <= 0:
        return ordered[0]
    if pct >= 100:
        return ordered[-1]
    rank = max(1, int(round(pct / 100.0 * len(ordered))))
    return ordered[rank - 1]
