"""Fixed-bucket log-scale latency histograms.

The windowed-rate layer in :mod:`repro.metrics.collector` reproduces
the paper's time-series figures, but percentile latency (p50/p95/p99
publish→deliver, catchup lag) needs a distribution, not a rate.
:class:`LatencyHistogram` is the production-broker shape: a fixed set
of log-spaced bucket bounds shared by every instance, so histograms
from different runs, brokers or trace spans merge by adding counts —
no raw samples are retained.

Accuracy contract: bucket bounds grow by :data:`BUCKET_FACTOR`, so for
any value within range ``raw_percentile <= histogram_percentile <=
raw_percentile * BUCKET_FACTOR`` (the histogram quotes a bucket's
upper bound, clamped to the observed maximum).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Ratio between consecutive bucket upper bounds (~25% relative error).
BUCKET_FACTOR = 1.25

#: Smallest / largest finite bucket bounds in milliseconds.  0.05 ms is
#: below any simulated hop; 120 s exceeds any plausible catchup lag in
#: the experiments; everything above the top bound lands in overflow.
_BOUND_LO_MS = 0.05
_BOUND_HI_MS = 120_000.0


def _make_bounds() -> Tuple[float, ...]:
    bounds: List[float] = []
    b = _BOUND_LO_MS
    while b < _BOUND_HI_MS:
        bounds.append(b)
        b *= BUCKET_FACTOR
    bounds.append(_BOUND_HI_MS)
    return tuple(bounds)


#: Upper bounds of the finite buckets, shared by all histograms.
BUCKET_BOUNDS: Tuple[float, ...] = _make_bounds()


class LatencyHistogram:
    """A mergeable fixed-bucket histogram of millisecond durations.

    ``counts[i]`` counts observations ``v`` with
    ``BUCKET_BOUNDS[i-1] < v <= BUCKET_BOUNDS[i]`` (and the final slot
    is the overflow bucket above the top bound).
    """

    __slots__ = ("name", "counts", "count", "sum", "_max", "_min")

    bounds: Tuple[float, ...] = BUCKET_BOUNDS

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._max = 0.0
        self._min: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def observe(self, value_ms: float) -> None:
        if value_ms < 0.0:
            value_ms = 0.0  # clock-skew guard; virtual time never skews
        self.counts[bisect_left(self.bounds, value_ms)] += 1
        self.count += 1
        self.sum += value_ms
        if value_ms > self._max:
            self._max = value_ms
        if self._min is None or value_ms < self._min:
            self._min = value_ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (identical bucket bounds)."""
        if other.bounds is not self.bounds and other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other._max > self._max:
            self._max = other._max
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, quoted as the rank bucket's upper
        bound clamped to the observed extremes (see module docstring)."""
        if not self.count:
            return 0.0
        if pct <= 0:
            return self.min
        rank = min(self.count, max(1, int(round(pct / 100.0 * self.count))))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self._max
                return min(self.bounds[i], self._max)
        return self._max  # pragma: no cover - cumulative always reaches count

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready summary (non-empty buckets only)."""
        return {
            "name": self.name,
            "count": self.count,
            "sum_ms": round(self.sum, 6),
            "mean_ms": round(self.mean, 6),
            "min_ms": round(self.min, 6),
            "max_ms": round(self.max, 6),
            "p50_ms": round(self.p50, 6),
            "p95_ms": round(self.p95, 6),
            "p99_ms": round(self.p99, 6),
            "buckets": {
                ("inf" if i >= len(self.bounds) else repr(self.bounds[i])): n
                for i, n in enumerate(self.counts)
                if n
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LatencyHistogram {self.name or '?'} n={self.count} "
            f"p50={self.p50:.2f}ms p99={self.p99:.2f}ms max={self.max:.2f}ms>"
        )
