"""JMS-layer control messages (client ↔ SHB extension protocol).

Section 5.2: for JMS durable subscribers the SHB — not the client —
maintains ``CT(s)`` in persistent storage, and every consume-commit by
the subscriber transactionally updates it.  These messages carry those
commits (and CT lookups on reconnect) over the ordinary client link;
the SHB side is handled by
:class:`repro.jms.ctstore.CheckpointCommitService` via the broker's
client-extension hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class JMSCommitRequest:
    """Commit the subscriber's CT at the SHB (one consume transaction)."""

    sub_id: str
    checkpoint: Dict[str, int]
    request_id: int

    @property
    def size_bytes(self) -> int:
        return 48 + 16 * len(self.checkpoint)


@dataclass
class JMSCommitDone:
    """The commit for ``request_id`` is durable; consume the next message."""

    sub_id: str
    request_id: int

    @property
    def size_bytes(self) -> int:
        return 48


@dataclass
class JMSCTLookup:
    """Ask the SHB for the durably stored CT (reconnect path)."""

    sub_id: str
    request_id: int

    @property
    def size_bytes(self) -> int:
        return 48


@dataclass
class JMSCTLookupReply:
    """The stored CT (empty dict when the subscriber is unknown)."""

    sub_id: str
    checkpoint: Dict[str, int]
    request_id: int

    @property
    def size_bytes(self) -> int:
        return 48 + 16 * len(self.checkpoint)
