"""JMS-style durable subscription sessions.

The paper implements "JMS durable subscriptions on top of our model":
the difference from the native model is that the messaging system (the
SHB) stores the subscriber's CT, updated transactionally as the client
commits consumption.  This module provides the client half:

* :data:`AUTO_ACKNOWLEDGE` — every consumed event message commits the
  CT before the next message is consumed (the paper calls this "the
  most severe" mode; Section 5.2 measures it),
* :data:`DUPS_OK_ACKNOWLEDGE` — commits lazily every
  ``dups_ok_batch`` messages (fewer transactions, possible duplicates
  on failure),
* :data:`CLIENT_ACKNOWLEDGE` — the application calls
  :meth:`JMSDurableSubscriber.acknowledge`,
* :data:`SESSION_TRANSACTED` — the application calls
  :meth:`JMSDurableSubscriber.commit_transaction`.

Messages queue client-side while a commit is outstanding, so measured
consumption throughput is bounded by the SHB's CT-commit throughput —
the effect the JMS benchmark quantifies.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..core import messages as M
from ..client.subscriber import DurableSubscriber
from ..matching.predicates import Predicate
from ..net.node import Node
from ..net.simtime import Scheduler
from .messages import JMSCommitDone, JMSCommitRequest, JMSCTLookup, JMSCTLookupReply

AUTO_ACKNOWLEDGE = "auto"
DUPS_OK_ACKNOWLEDGE = "dups_ok"
CLIENT_ACKNOWLEDGE = "client"
SESSION_TRANSACTED = "transacted"

_MODES = (AUTO_ACKNOWLEDGE, DUPS_OK_ACKNOWLEDGE, CLIENT_ACKNOWLEDGE, SESSION_TRANSACTED)


class JMSDurableSubscriber(DurableSubscriber):
    """A durable subscriber whose CT lives at the SHB (JMS semantics)."""

    def __init__(
        self,
        scheduler: Scheduler,
        sub_id: str,
        node: Node,
        predicate: Predicate,
        ack_mode: str = AUTO_ACKNOWLEDGE,
        dups_ok_batch: int = 20,
        on_message: Optional[Callable[[M.EventMessage], None]] = None,
    ) -> None:
        if ack_mode not in _MODES:
            raise ValueError(f"unknown ack mode {ack_mode!r}")
        # The native periodic CT ack still runs (it is harmless and
        # keeps release state fresh between commits).
        super().__init__(scheduler, sub_id, node, predicate, ack_interval_ms=250.0)
        self.ack_mode = ack_mode
        self.dups_ok_batch = dups_ok_batch
        self.on_message = on_message
        self._inbox: Deque[object] = deque()
        self._awaiting_commit = False
        self._next_request_id = 0
        self._uncommitted = 0
        self.commits_completed = 0
        self.events_consumed = 0

    # ------------------------------------------------------------------
    # Message intake: queue, then consume gated by commits
    # ------------------------------------------------------------------
    def _on_message(self, msg: object) -> None:
        if isinstance(msg, M.ConnectAccept):
            self._on_accept(msg)
        elif isinstance(msg, JMSCommitDone):
            self._on_commit_done(msg)
        elif isinstance(msg, JMSCTLookupReply):
            self._on_lookup_reply(msg)
        elif isinstance(msg, (M.EventMessage, M.SilenceMessage, M.GapMessage)):
            self._inbox.append(msg)
            self._pump_consume()

    def _pump_consume(self) -> None:
        while self._inbox and not self._awaiting_commit:
            msg = self._inbox.popleft()
            if isinstance(msg, M.EventMessage):
                self._consume_event(msg)
                self.events_consumed += 1
                self._uncommitted += 1
                if self.on_message is not None:
                    self.on_message(msg)
                if self.ack_mode == AUTO_ACKNOWLEDGE:
                    self._send_commit()
                elif self.ack_mode == DUPS_OK_ACKNOWLEDGE and self._uncommitted >= self.dups_ok_batch:
                    self._send_commit()
            elif isinstance(msg, M.SilenceMessage):
                self._consume_marker(msg.pubend, msg.t, is_gap=False)
            else:
                assert isinstance(msg, M.GapMessage)
                self._consume_marker(msg.pubend, msg.t, is_gap=True)

    # ------------------------------------------------------------------
    # Commits
    # ------------------------------------------------------------------
    def acknowledge(self) -> None:
        """CLIENT_ACKNOWLEDGE: commit everything consumed so far."""
        if self.ack_mode != CLIENT_ACKNOWLEDGE:
            raise ValueError("acknowledge() only valid in CLIENT_ACKNOWLEDGE mode")
        self._send_commit()

    def commit_transaction(self) -> None:
        """SESSION_TRANSACTED: commit the consumption transaction."""
        if self.ack_mode != SESSION_TRANSACTED:
            raise ValueError("commit_transaction() only valid in SESSION_TRANSACTED mode")
        self._send_commit()

    def _send_commit(self) -> None:
        if not self.connected or self._send is None:
            return
        self._awaiting_commit = True
        self._uncommitted = 0
        self._next_request_id += 1
        self._send.send(
            JMSCommitRequest(self.sub_id, self.ct.as_dict(), self._next_request_id)
        )

    def _on_commit_done(self, msg: JMSCommitDone) -> None:
        if msg.request_id != self._next_request_id:
            return  # stale completion from before a reconnect
        self._awaiting_commit = False
        self.committed_ct = self.ct.copy()
        self.commits_completed += 1
        self._pump_consume()

    # ------------------------------------------------------------------
    # Reconnect: recover the CT from the SHB
    # ------------------------------------------------------------------
    def lookup_ct(self) -> None:
        """Ask the SHB for the stored CT (call after connect, before
        relying on local state after a client crash)."""
        if self._send is None:
            return
        self._next_request_id += 1
        self._send.send(JMSCTLookup(self.sub_id, self._next_request_id))

    def _on_lookup_reply(self, msg: JMSCTLookupReply) -> None:
        if msg.checkpoint:
            for pubend, t in msg.checkpoint.items():
                if t > self.ct.get(pubend, -1):
                    self.ct.advance(pubend, t)
            self.committed_ct = self.ct.copy()

    def crash(self) -> None:
        """A JMS client crash also abandons any in-flight commit."""
        super().crash()
        self._awaiting_commit = False
        self._inbox.clear()
