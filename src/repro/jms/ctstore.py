"""SHB-side transactional checkpoint storage for JMS subscribers.

Section 5.2: *"the SHB needs to maintain CT(s) in persistent storage
(DB2).  Whenever the JMS durable subscriber commits after consuming
some events, the corresponding changes to the CT(s) vector at the SHB
are committed to the database ... the SHB used 4 JDBC connections each
associated with a thread.  Requests to update CT(s) were assigned to
one of the threads based on the subscriber id.  Each thread explicitly
batched all the waiting requests into one database transaction.  To
improve performance, the hardware write-cache in the SSA disk
controller was utilized."*

Reproduced mechanics:

* ``n_connections`` independent commit pipelines; requests hash to a
  pipeline by subscriber id,
* every pipeline batches all waiting requests into one transaction —
  multiple updates for the same subscriber coalesce (only the newest
  CT matters), which is why the 25→200 subscriber scaling is
  sub-linear in the paper,
* transaction wall-clock cost is ``base + per_update × batch`` — the
  commit itself does not consume the broker CPU (it is DB/disk time on
  a write-cached controller), only a small CPU term per update,
* when the transaction completes, the registry's ``released(s, p)``
  acks are applied (the committed CT *is* the acknowledgment for the
  release protocol) and the waiting clients are notified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..broker.shb import SubscriberHostingBroker
from ..net.link import LinkEnd
from ..storage.table import PersistentTable
from .messages import JMSCommitDone, JMSCommitRequest, JMSCTLookup, JMSCTLookupReply


@dataclass(frozen=True)
class CommitCosts:
    """Per-transaction wall-clock cost model (milliseconds).

    Calibrated so that one SHB peaks near the paper's 4K events/s with
    25 auto-ack subscribers and 7.6K with 200 (see DESIGN.md).
    """

    base_ms: float = 0.55
    per_update_ms: float = 0.35
    cpu_per_update_ms: float = 0.01
    #: How long a connection waits after its first pending request
    #: before opening the transaction, so one commit round's worth of
    #: auto-ack replies lands in the same batch ("explicitly batched
    #: all the waiting requests").
    batch_delay_ms: float = 1.2


class CheckpointCommitService:
    """The 4-connection batched CT commit engine at one SHB."""

    def __init__(
        self,
        shb: SubscriberHostingBroker,
        n_connections: int = 4,
        costs: Optional[CommitCosts] = None,
    ) -> None:
        if n_connections < 1:
            raise ValueError("need at least one connection")
        self.shb = shb
        self.scheduler = shb.scheduler
        self.n_connections = n_connections
        self.costs = costs if costs is not None else CommitCosts()
        self.table = PersistentTable(f"{shb.name}.jms_ct", disk=None)
        # pending[i]: sub_id -> (latest ct, reply targets)
        self._pending: List[Dict[str, Tuple[Dict[str, int], List[Tuple[LinkEnd, int]]]]] = [
            {} for _ in range(n_connections)
        ]
        self._busy = [False] * n_connections
        self.commits = 0
        self.updates_committed = 0
        self.updates_coalesced = 0
        shb.register_client_extension(JMSCommitRequest, self._on_commit_request)
        shb.register_client_extension(JMSCTLookup, self._on_lookup)
        shb.node.on_crash(self._on_crash)
        # Back-reference for durable-subscriber migration: the SHB's
        # handoff flow exports/installs the CT rows through us.
        shb.ct_service = self

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _connection_for(self, sub_id: str) -> int:
        return sum(ord(c) for c in sub_id) % self.n_connections

    def _on_commit_request(self, send_end: LinkEnd, msg: JMSCommitRequest) -> None:
        conn = self._connection_for(msg.sub_id)
        slot = self._pending[conn]
        entry = slot.get(msg.sub_id)
        if entry is None:
            slot[msg.sub_id] = (dict(msg.checkpoint), [(send_end, msg.request_id)])
        else:
            # Coalesce: keep only the newest CT, notify everyone waiting.
            self.updates_coalesced += 1
            entry[0].update(msg.checkpoint)
            entry[1].append((send_end, msg.request_id))
        if not self._busy[conn]:
            # Wait batch_delay_ms before opening the transaction so the
            # rest of this commit round joins the batch.
            self._busy[conn] = True
            self.scheduler.after(self.costs.batch_delay_ms, self._open_cycle, conn)

    def _open_cycle(self, conn: int) -> None:
        self._busy[conn] = False
        self._start_cycle(conn)

    def _on_lookup(self, send_end: LinkEnd, msg: JMSCTLookup) -> None:
        ct = self.table.get_committed(msg.sub_id, {})
        send_end.send(JMSCTLookupReply(msg.sub_id, dict(ct), msg.request_id))

    # ------------------------------------------------------------------
    # Commit pipeline
    # ------------------------------------------------------------------
    def _start_cycle(self, conn: int) -> None:
        batch = self._pending[conn]
        if not batch:
            return
        self._pending[conn] = {}
        self._busy[conn] = True
        n = len(batch)
        # CPU: marshalling/JDBC work on the broker's processor.
        self.shb.node.try_submit(self.costs.cpu_per_update_ms * n, lambda: None)
        # Wall clock: the transaction against the (write-cached) DB.
        duration = self.costs.base_ms + self.costs.per_update_ms * n
        self.scheduler.after(duration, self._complete_cycle, conn, batch)

    def _complete_cycle(
        self,
        conn: int,
        batch: Dict[str, Tuple[Dict[str, int], List[Tuple[LinkEnd, int]]]],
    ) -> None:
        if self.shb.node.is_down:
            return  # the SHB crashed mid-transaction: nothing committed
        for sub_id, (ct, _waiters) in batch.items():
            stored = dict(self.table.get(sub_id, {}))
            stored.update(ct)
            self.table.put(sub_id, stored)
            # The committed CT is the acknowledgment for release.
            if sub_id in self.shb.registry:
                for pubend, t in ct.items():
                    if pubend in self.shb.constreams:
                        self.shb.registry.ack(sub_id, pubend, t)
        self.table.commit()
        self.commits += 1
        self.updates_committed += len(batch)
        for sub_id, (_ct, waiters) in batch.items():
            for send_end, request_id in waiters:
                send_end.send(JMSCommitDone(sub_id, request_id))
        self._busy[conn] = False
        if self._pending[conn]:
            self._start_cycle(conn)

    # ------------------------------------------------------------------
    # Migration handoff (see SubscriberHostingBroker._on_migrate_*)
    # ------------------------------------------------------------------
    def export_ct(self, sub_id: str) -> Dict[str, int]:
        """The subscription's durable CT vector, for a migration offer."""
        return dict(self.table.get(sub_id, {}))

    def install_ct(self, sub_id: str, ct: Dict[str, int]) -> None:
        """Adopt a migrated-in CT vector, monotonically.

        Monotone merge makes a retried install idempotent, and never
        regresses a CT the (re)connected subscriber may have advanced
        here in the meantime.
        """
        stored = dict(self.table.get(sub_id, {}))
        changed = False
        for pubend, t in ct.items():
            if t > stored.get(pubend, -1):
                stored[pubend] = t
                changed = True
        if changed:
            self.table.put(sub_id, stored)
            self.table.commit()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_crash(self) -> None:
        self._pending = [{} for _ in range(self.n_connections)]
        self._busy = [False] * self.n_connections
        self.table.crash_reset()
