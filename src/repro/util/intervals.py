"""Closed integer interval sets.

Timestamps in the stream protocol are integers ("time ticks", see
Section 2 of the paper), and nearly every protocol component reasons
about *ranges* of ticks: knowledge streams hold ranges of S/L ticks,
curiosity streams track ranges that need to be nacked, catchup streams
track ranges still to be recovered, and the release protocol chops
prefixes of ranges.

:class:`IntervalSet` is the shared representation: a normalized,
sorted, non-overlapping, non-adjacent list of closed intervals
``[start, end]`` over ``int``.  All mutating operations keep the
normal form, and all operations are ``O(k log n)`` or better where *k*
is the number of touched intervals.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[start, end]`` with ``start <= end``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"empty interval [{self.start}, {self.end}]")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __contains__(self, t: int) -> bool:
        return self.start <= t <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one tick."""
        return self.start <= other.end and other.start <= self.end

    def adjacent_or_overlaps(self, other: "Interval") -> bool:
        """True when the union of the two intervals is a single interval."""
        return self.start <= other.end + 1 and other.start <= self.end + 1

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The overlap of the two intervals, or None when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.start},{self.end}]"


class IntervalSet:
    """A set of integers stored as sorted disjoint closed intervals.

    The empty set is falsy.  Iteration yields :class:`Interval` objects
    in ascending order.  Instances are mutable; use :meth:`copy` to
    snapshot.
    """

    __slots__ = ("_ivs", "_count")

    def __init__(self, intervals: Iterable[Tuple[int, int]] = ()) -> None:
        self._ivs: List[Interval] = []
        self._count = 0  # total ticks, maintained incrementally
        for start, end in intervals:
            self.add(start, end)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, t: int) -> "IntervalSet":
        """The set containing exactly one tick."""
        return cls([(t, t)])

    @classmethod
    def span(cls, start: int, end: int) -> "IntervalSet":
        """The set containing every tick in ``[start, end]``."""
        return cls([(start, end)])

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._ivs = list(self._ivs)
        out._count = self._count
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __len__(self) -> int:
        """Number of disjoint intervals (not the number of ticks)."""
        return len(self._ivs)

    def tick_count(self) -> int:
        """Total number of integer ticks contained in the set (O(1))."""
        return self._count

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("IntervalSet is unhashable")

    def __contains__(self, t: int) -> bool:
        i = bisect.bisect_right(self._ivs, t, key=lambda iv: iv.start) - 1
        return i >= 0 and t <= self._ivs[i].end

    def min(self) -> int:
        """Smallest tick in the set (raises on empty)."""
        if not self._ivs:
            raise ValueError("empty IntervalSet has no minimum")
        return self._ivs[0].start

    def max(self) -> int:
        """Largest tick in the set (raises on empty)."""
        if not self._ivs:
            raise ValueError("empty IntervalSet has no maximum")
        return self._ivs[-1].end

    def first_interval(self) -> Interval:
        if not self._ivs:
            raise ValueError("empty IntervalSet")
        return self._ivs[0]

    def intervals(self) -> List[Interval]:
        """A snapshot list of the intervals (ascending)."""
        return list(self._ivs)

    def interval_containing(self, t: int) -> Optional[Interval]:
        """The interval that contains tick ``t``, or None."""
        i = bisect.bisect_right(self._ivs, t, key=lambda iv: iv.start) - 1
        if i >= 0 and t <= self._ivs[i].end:
            return self._ivs[i]
        return None

    def as_tuples(self) -> List[Tuple[int, int]]:
        """``[(start, end), ...]`` — convenient for messages/serialization."""
        return [(iv.start, iv.end) for iv in self._ivs]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, start: int, end: Optional[int] = None) -> None:
        """Insert every tick in ``[start, end]`` (or just ``start``)."""
        if end is None:
            end = start
        new = Interval(start, end)
        ivs = self._ivs
        # Find the window of intervals that the new interval merges with.
        lo = bisect.bisect_left(ivs, new.start, key=lambda iv: iv.end + 1)
        hi = bisect.bisect_right(ivs, new.end + 1, lo=lo, key=lambda iv: iv.start)
        replaced = 0
        if lo < hi:
            for iv in ivs[lo:hi]:
                replaced += iv.end - iv.start + 1
            new = Interval(min(new.start, ivs[lo].start), max(new.end, ivs[hi - 1].end))
        ivs[lo:hi] = [new]
        self._count += (new.end - new.start + 1) - replaced

    def add_interval(self, iv: Interval) -> None:
        self.add(iv.start, iv.end)

    def update(self, other: "IntervalSet") -> None:
        """In-place union with another set (linear merge-walk)."""
        if not other._ivs:
            return
        if not self._ivs:
            self._ivs = list(other._ivs)
            self._count = other._count
            return
        if len(other._ivs) <= 2:
            # Cheap path for tiny right-hand sides.
            for iv in other._ivs:
                self.add(iv.start, iv.end)
            return
        merged: List[Interval] = []
        count = 0
        i = j = 0
        a, b = self._ivs, other._ivs
        current: Optional[Interval] = None
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i].start <= b[j].start):
                nxt = a[i]
                i += 1
            else:
                nxt = b[j]
                j += 1
            if current is None:
                current = nxt
            elif nxt.start <= current.end + 1:
                if nxt.end > current.end:
                    current = Interval(current.start, nxt.end)
            else:
                merged.append(current)
                count += current.end - current.start + 1
                current = nxt
        if current is not None:
            merged.append(current)
            count += current.end - current.start + 1
        self._ivs = merged
        self._count = count

    def remove(self, start: int, end: Optional[int] = None) -> None:
        """Delete every tick in ``[start, end]`` from the set."""
        if end is None:
            end = start
        ivs = self._ivs
        lo = bisect.bisect_left(ivs, start, key=lambda iv: iv.end)
        hi = bisect.bisect_right(ivs, end, lo=lo, key=lambda iv: iv.start)
        if lo >= hi:
            return
        removed = 0
        for iv in ivs[lo:hi]:
            removed += iv.end - iv.start + 1
        replacement: List[Interval] = []
        first, last = ivs[lo], ivs[hi - 1]
        if first.start < start:
            replacement.append(Interval(first.start, start - 1))
        if last.end > end:
            replacement.append(Interval(end + 1, last.end))
        ivs[lo:hi] = replacement
        for iv in replacement:
            removed -= iv.end - iv.start + 1
        self._count -= removed

    def difference_update(self, other: "IntervalSet") -> None:
        """In-place subtraction of another set (linear merge-walk)."""
        if not self._ivs or not other._ivs:
            return
        if len(other._ivs) <= 2:
            # Cheap path for tiny right-hand sides.
            for iv in other._ivs:
                self.remove(iv.start, iv.end)
            return
        b = other._ivs
        out: List[Interval] = []
        count = 0
        j = 0
        for iv in self._ivs:
            cursor = iv.start
            # Skip subtrahend intervals entirely before this interval.
            while j < len(b) and b[j].end < iv.start:
                j += 1
            k = j
            while k < len(b) and b[k].start <= iv.end and cursor <= iv.end:
                if b[k].start > cursor:
                    out.append(Interval(cursor, b[k].start - 1))
                    count += b[k].start - cursor
                cursor = max(cursor, b[k].end + 1)
                k += 1
            if cursor <= iv.end:
                out.append(Interval(cursor, iv.end))
                count += iv.end - cursor + 1
        self._ivs = out
        self._count = count

    def chop_below(self, t: int) -> None:
        """Remove every tick strictly less than ``t``.

        Mirrors the release protocol's prefix truncation.
        """
        if t <= 0 and not self._ivs:
            return
        if self._ivs and self._ivs[0].start < t:
            self.remove(self._ivs[0].start, t - 1)

    def clear(self) -> None:
        self._ivs.clear()
        self._count = 0

    # ------------------------------------------------------------------
    # Set algebra (non-mutating)
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        out = self.copy()
        out.update(other)
        return out

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out = self.copy()
        out.difference_update(other)
        return out

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Ticks present in both sets (merge-walk, linear in intervals)."""
        out = IntervalSet()
        a, b = self._ivs, other._ivs
        i = j = 0
        while i < len(a) and j < len(b):
            hit = a[i].intersect(b[j])
            if hit is not None:
                out.add(hit.start, hit.end)
            if a[i].end < b[j].end:
                i += 1
            else:
                j += 1
        return out

    def intersect_span(self, start: int, end: int) -> "IntervalSet":
        """Ticks of this set falling inside ``[start, end]``."""
        out = IntervalSet()
        if start > end:
            return out
        ivs = self._ivs
        lo = bisect.bisect_left(ivs, start, key=lambda iv: iv.end)
        for iv in ivs[lo:]:
            if iv.start > end:
                break
            out.add(max(iv.start, start), min(iv.end, end))
        return out

    def complement_within(self, start: int, end: int) -> "IntervalSet":
        """Ticks of ``[start, end]`` *not* present in this set.

        Used to turn "these ticks are Q" into "everything else is S".
        """
        out = IntervalSet()
        if start > end:
            return out
        cursor = start
        for iv in self.intersect_span(start, end):
            if iv.start > cursor:
                out.add(cursor, iv.start - 1)
            cursor = iv.end + 1
        if cursor <= end:
            out.add(cursor, end)
        return out

    def ticks(self) -> Iterator[int]:
        """Iterate individual ticks in ascending order (use sparingly)."""
        for iv in self._ivs:
            yield from iv

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self.as_tuples()!r})"


def coalesce_ranges(ranges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Normalize ``(start, end)`` pairs: sort, merge overlap and adjacency.

    The dissemination paths build range lists incrementally (per-tick
    appends when filtering D events down to S for a child, per-interval
    appends when answering nacks), which leaves many adjacent fragments;
    a run of silence then ships as many messages' worth of ranges.
    Coalescing before transmission turns each maximal run back into a
    single ``(start, end)`` pair.  Ticks covered are preserved exactly.
    """
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(ranges):
        if start > end:
            raise ValueError(f"empty range ({start}, {end})")
        if merged and start <= merged[-1][1] + 1:
            last_start, last_end = merged[-1]
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged
