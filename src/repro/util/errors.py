"""Exception hierarchy for the reproduction library.

Every error raised by ``repro`` code derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing programming errors (``ValueError``/``TypeError``
raised on bad arguments) from operational failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProtocolError(ReproError):
    """A broker or client violated the stream/routing protocol.

    Raised, for example, when a knowledge update regresses a doubt
    horizon or when conflicting tick values (D vs S) are accumulated for
    the same timestamp.
    """


class StorageError(ReproError):
    """A persistent-storage operation failed or was used incorrectly."""


class CorruptLogError(StorageError):
    """A log-volume record failed its checksum or framing validation."""


class RecordNotFoundError(StorageError):
    """A log-volume index points below the chop point or past the end."""


class NodeDownError(ReproError):
    """An operation was attempted on a crashed simulation node."""


class NotConnectedError(ReproError):
    """A client operation requires an active broker connection."""


class SubscriptionError(ReproError):
    """A durable subscription was used in an invalid way.

    Examples: reconnecting a subscription id that is already connected,
    or acknowledging a checkpoint token that regresses a prior ack.
    """


class ConfigurationError(ReproError):
    """An experiment or topology configuration is inconsistent."""
