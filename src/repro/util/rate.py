"""Windowed rate and utilization estimators over simulated time.

The paper reports throughput (events/second), tick-advance rates
(tick-milliseconds per second of real time, Figures 6 and 7) and CPU
idle percentages (Figure 8).  These helpers turn raw counters sampled
against the simulation clock into the per-window series those plots
show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class RateCounter:
    """Counts discrete occurrences and reports per-window rates.

    ``record(now)`` registers occurrences; :meth:`rate` converts the
    count accumulated since the previous sample into an events/second
    figure.  Time is in milliseconds, matching the simulation clock.
    """

    name: str = ""
    _count: int = 0
    _last_sample_time: Optional[float] = None
    _last_sample_count: int = 0

    def record(self, n: int = 1) -> None:
        self._count += n

    @property
    def total(self) -> int:
        return self._count

    def prime(self, now_ms: float) -> None:
        """Set the window baseline without emitting a sample.

        A counter created at time 0 but first sampled mid-run would
        otherwise report the whole ``[0, now]`` span diluted into one
        window; the collector primes its trackers on ``start()``.
        """
        self._last_sample_time = now_ms
        self._last_sample_count = self._count

    def rate(self, now_ms: float) -> Optional[float]:
        """Events per second since the previous call to :meth:`rate`.

        Returns ``None`` (no sample) until a baseline exists — the
        first call after construction primes and reports nothing.
        """
        if self._last_sample_time is None:
            self.prime(now_ms)
            return None
        elapsed = now_ms - self._last_sample_time
        delta = self._count - self._last_sample_count
        self.prime(now_ms)
        if elapsed <= 0.0:
            return 0.0
        return delta * 1000.0 / elapsed


@dataclass
class GaugeRate:
    """Tracks the advance rate of a monotone gauge (e.g. latestDelivered).

    Figure 6 plots how many tick-milliseconds ``latestDelivered(p)`` and
    ``released(p)`` advance per second of wall-clock time.  ``sample``
    with the current gauge value returns exactly that quantity.
    """

    name: str = ""
    _last_time: Optional[float] = None
    _last_value: Optional[float] = None

    def prime(self, now_ms: float, value: float) -> None:
        """Set the window baseline without emitting a sample."""
        self._last_time, self._last_value = now_ms, value

    def sample(self, now_ms: float, value: float) -> Optional[float]:
        """Gauge units advanced per second since the previous sample.

        Returns ``None`` (no sample) until a baseline exists, so a
        tracker first consulted mid-run never reports a window it did
        not observe in full.
        """
        if self._last_time is None or self._last_value is None:
            self.prime(now_ms, value)
            return None
        elapsed = now_ms - self._last_time
        delta = value - self._last_value
        self.prime(now_ms, value)
        if elapsed <= 0.0:
            return 0.0
        return delta * 1000.0 / elapsed


@dataclass
class BusyTracker:
    """Accumulates busy time for a serially scheduled resource.

    A simulation node reports ``[start, end]`` busy spans; ``idle_fraction``
    returns the idle percentage over the window since the last sample —
    the quantity plotted in Figure 8's CPU charts.
    """

    _busy_ms: float = 0.0
    _last_sample_time: float = 0.0
    _last_sample_busy: float = 0.0

    def add_busy(self, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError("busy duration must be non-negative")
        self._busy_ms += duration_ms

    @property
    def total_busy_ms(self) -> float:
        return self._busy_ms

    def prime(self, now_ms: float) -> None:
        """Reset the window baseline (collector start, mid-run)."""
        self._last_sample_time = now_ms
        self._last_sample_busy = self._busy_ms

    def idle_fraction(self, now_ms: float) -> float:
        """Fraction of the window since the last sample spent idle (0..1)."""
        elapsed = now_ms - self._last_sample_time
        busy = self._busy_ms - self._last_sample_busy
        self._last_sample_time = now_ms
        self._last_sample_busy = self._busy_ms
        if elapsed <= 0.0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - busy / elapsed))


@dataclass
class Series:
    """An append-only (time, value) series with simple reductions."""

    name: str = ""
    points: List[Tuple[float, float]] = field(default_factory=list)

    def append(self, t_ms: float, value: float) -> None:
        self.points.append((t_ms, value))

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def mean(self) -> float:
        vals = self.values()
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def max(self) -> float:
        vals = self.values()
        return max(vals) if vals else 0.0

    def min(self) -> float:
        vals = self.values()
        return min(vals) if vals else 0.0

    def between(self, t0: float, t1: float) -> "Series":
        """Sub-series with sample times in ``[t0, t1]``."""
        out = Series(self.name)
        out.points = [(t, v) for t, v in self.points if t0 <= t <= t1]
        return out

    def __len__(self) -> int:
        return len(self.points)
