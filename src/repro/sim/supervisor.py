"""Dynamic-topology supervisor: broker join/leave and subscriber migration.

The paper's deployment story (Section 6) assumes the broker overlay is
fixed for the life of the system; real deployments grow, shrink and
rebalance.  This module adds the *control plane* for three supervised
mutations of a running overlay, each built so that no durable
subscriber ever loses exactly-once delivery:

* **join** — admit a new SHB (or intermediate) under a parent.  The
  newcomer is fast-forwarded to the pubends' current dissemination
  points before wiring (it hosts nothing, so it owes no history), then
  reaches steady state through the ordinary epoch-tagged subscription
  sync and release reporting.

* **migration** — hand a durable subscription from one SHB to another
  with a three-phase, epoch-verified flow (request → install → commit;
  see ``SubscriberHostingBroker._on_migrate_*``).  The supervisor is a
  plain client of both SHBs and drives each phase with periodic
  retransmission: every handler is idempotent and epoch-guarded, so
  duplication, reordering and retries — including those injected by the
  lossy-link fault model — are harmless.  The destination owns the
  subscription durably *before* the source withdraws it, so a crash at
  any point leaves at least one SHB that can serve the subscriber.

* **drain / leave** — quiesce an SHB (stop admitting subscriptions,
  migrate every hosted one away, then detach) or an intermediate
  (reparent its children to the grandparent, then detach).  Detaching
  releases the departed broker's filter-union and release-aggregation
  state upstream so the tree's release protocol keeps advancing.

Placement is pluggable: :func:`least_loaded_policy` (the default used
by :meth:`Supervisor.rebalance`) evens out subscriber counts, which is
what the Zipf-skew experiment exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..broker.base import Broker
from ..broker.intermediate import IntermediateBroker
from ..broker.shb import SubscriberHostingBroker
from ..broker.topology import (
    Overlay,
    attach_intermediate,
    attach_shb,
    detach_broker,
    reparent_broker,
)
from ..core import messages as M
from ..net.link import Link
from ..net.node import Node
from ..net.simtime import PeriodicHandle
from ..util.errors import ConfigurationError

ShbRef = Union[str, SubscriberHostingBroker]


@dataclass
class MigrationHandle:
    """Observable state of one supervised handoff."""

    handoff_id: str
    sub_id: str
    source: str
    dest: str
    epoch: int
    #: request → install → commit → done (or done with found=False when
    #: the source no longer hosts the subscription).
    phase: str = "request"
    done: bool = False
    found: bool = True
    offer: Optional[M.MigrateOffer] = None
    on_done: Optional[Callable[["MigrationHandle"], None]] = None
    _timer: Optional[PeriodicHandle] = None


@dataclass
class DrainHandle:
    """Observable state of one supervised SHB drain."""

    broker: str
    dest: str
    done: bool = False
    detached: bool = False
    migrations: List[MigrationHandle] = field(default_factory=list)
    on_done: Optional[Callable[["DrainHandle"], None]] = None


def least_loaded_policy(
    placement: Dict[str, List[str]],
) -> List[Tuple[str, str, str]]:
    """Default placement policy: even out subscriber counts.

    Given the current placement (SHB name → hosted sub ids), plan
    ``(sub_id, source, dest)`` moves from the most- to the least-loaded
    SHB until no pair differs by more than one — the classic fix for a
    Zipf-skewed arrival pattern that piled subscribers onto one broker.
    """
    loads = {name: list(subs) for name, subs in placement.items()}
    moves: List[Tuple[str, str, str]] = []
    while True:
        hottest = max(loads, key=lambda n: (len(loads[n]), n))
        coldest = min(loads, key=lambda n: (len(loads[n]), n))
        if len(loads[hottest]) - len(loads[coldest]) <= 1:
            return moves
        sub_id = loads[hottest].pop()
        loads[coldest].append(sub_id)
        moves.append((sub_id, hottest, coldest))


class Supervisor:
    """Orchestrates join, drain and migration on a running overlay.

    Purely additive: an overlay that never instantiates a Supervisor
    schedules no extra events and draws no randomness, so baseline
    determinism digests are untouched.
    """

    def __init__(
        self,
        overlay: Overlay,
        retry_ms: float = 150.0,
        client_latency_ms: float = 0.5,
        detach_grace_ms: float = 2_500.0,
    ) -> None:
        self.overlay = overlay
        self.scheduler = overlay.scheduler
        self.node = Node(self.scheduler, "supervisor")
        self.retry_ms = retry_ms
        self.client_latency_ms = client_latency_ms
        #: How long a drained SHB keeps reporting after its last row
        #: drops before it is detached.  Must cover the handoff release
        #: pins (``SubscriberHostingBroker.migration_pin_ms``): detach
        #: removes the broker from its parent's release aggregation, so
        #: detaching while a pin is still the binding floor would reopen
        #: the window the pin closes.
        self.detach_grace_ms = detach_grace_ms
        self._links: Dict[str, Link] = {}
        self._sends: Dict[str, object] = {}
        self._epoch_counter = 0
        self._handoff_seq = 0
        self.migrations: List[MigrationHandle] = []
        self._active: Dict[str, MigrationHandle] = {}

    # ------------------------------------------------------------------
    # Join / leave
    # ------------------------------------------------------------------
    def join_shb(
        self,
        name: str,
        parent: Optional[Broker] = None,
        **kwargs: object,
    ) -> SubscriberHostingBroker:
        """Admit a new SHB into the running overlay (see attach_shb)."""
        return attach_shb(self.overlay, name, parent=parent, **kwargs)

    def join_intermediate(
        self, name: str, parent: Optional[Broker] = None, **kwargs: object
    ) -> IntermediateBroker:
        return attach_intermediate(self.overlay, name, parent=parent, **kwargs)

    def drain_shb(
        self,
        shb: ShbRef,
        dest: ShbRef,
        on_done: Optional[Callable[[DrainHandle], None]] = None,
    ) -> DrainHandle:
        """Quiesce an SHB: migrate every subscription to ``dest``, detach.

        The SHB stops admitting new subscriptions immediately; each
        hosted subscription is handed to ``dest`` through the ordinary
        migration flow, and once the registry is durably empty the
        broker is detached from the tree (moving to ``overlay.retired``
        for post-hoc auditing).
        """
        source = self._resolve(shb)
        target = self._resolve(dest)
        if source is target:
            raise ConfigurationError("cannot drain an SHB into itself")
        source.begin_drain()
        handle = DrainHandle(source.name, target.name, on_done=on_done)
        self._drain_step(handle, source, target)
        return handle

    def _drain_step(
        self,
        handle: DrainHandle,
        source: SubscriberHostingBroker,
        target: SubscriberHostingBroker,
    ) -> None:
        subs = [sub.sub_id for sub in source.registry.all()]
        if not subs:

            def _detach() -> None:
                detach_broker(self.overlay, source)
                handle.detached = True
                handle.done = True
                if handle.on_done is not None:
                    handle.on_done(handle)

            if self.detach_grace_ms > 0:
                self.scheduler.at(self.scheduler.now + self.detach_grace_ms, _detach)
            else:
                _detach()
            return
        pending = {"n": len(subs)}

        def migrated(_m: MigrationHandle) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                # Go around again: a subscription may have reconnected
                # (and thus stayed) or a migration may have found
                # nothing; the drain converges because the draining SHB
                # refuses subscriptions it does not already host.
                self._drain_step(handle, source, target)

        for sub_id in subs:
            handle.migrations.append(
                self.migrate(sub_id, source, target, on_done=migrated)
            )

    def drain_intermediate(self, mid: IntermediateBroker) -> None:
        """Remove an intermediate: reparent its subtree, then detach.

        Children hop up to the grandparent; their eager uplink resync
        (subscription refresh, release re-report, curiosity kick)
        re-warms the new parent, and anything in flight on the severed
        links is recovered by the ordinary gap-check/nack machinery.
        """
        parent = self.overlay.parent_of(mid)
        if parent is None:
            raise ConfigurationError(f"{mid.name} has no parent")
        for child_name in list(mid.child_names):
            child = self.overlay.broker_by_name(child_name)
            reparent_broker(self.overlay, child, parent)
        detach_broker(self.overlay, mid)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate(
        self,
        sub_id: str,
        source: ShbRef,
        dest: ShbRef,
        on_done: Optional[Callable[[MigrationHandle], None]] = None,
    ) -> MigrationHandle:
        """Hand ``sub_id`` from ``source`` to ``dest`` (asynchronous).

        Returns immediately; the handoff advances as the scheduler
        runs.  Every phase is retried every ``retry_ms`` until its
        acknowledgment arrives, riding out lossy links and crashes of
        either SHB (the handlers are idempotent and epoch-guarded).
        """
        src = self._resolve(source)
        dst = self._resolve(dest)
        if src is dst:
            raise ConfigurationError("source and destination SHB are the same")
        self._handoff_seq += 1
        handle = MigrationHandle(
            handoff_id=f"handoff-{self._handoff_seq}",
            sub_id=sub_id,
            source=src.name,
            dest=dst.name,
            epoch=self._next_epoch(),
            on_done=on_done,
        )
        self.migrations.append(handle)
        self._active[handle.handoff_id] = handle
        handle._timer = self.scheduler.every(
            self.retry_ms, lambda: self._drive(handle)
        )
        self._drive(handle)
        return handle

    def _next_epoch(self) -> int:
        # Strictly increasing across all handoffs (clamped to sim time
        # like every other epoch in the system), so a subscription that
        # migrates A→B→A always presents a fresh epoch to A.
        self._epoch_counter = max(self._epoch_counter + 1, int(self.scheduler.now))
        return self._epoch_counter

    def _drive(self, handle: MigrationHandle) -> None:
        """(Re)send the current phase's message — the retry engine."""
        if handle.done:
            self._finish(handle)
            return
        if handle.phase == "request":
            self._send_to(
                handle.source,
                M.MigrateRequest(
                    handle.handoff_id, handle.sub_id, handle.epoch, handle.dest
                ),
            )
        elif handle.phase == "install":
            offer = handle.offer
            assert offer is not None
            self._send_to(
                handle.dest,
                M.MigrateInstall(
                    handle.handoff_id,
                    handle.sub_id,
                    handle.epoch,
                    source=handle.source,
                    predicate=offer.predicate,
                    released_ct=dict(offer.released_ct),
                    pfs_from=dict(offer.pfs_from),
                    jms_ct=dict(offer.jms_ct),
                ),
            )
        elif handle.phase == "commit":
            self._send_to(
                handle.source,
                M.MigrateCommit(
                    handle.handoff_id, handle.sub_id, handle.epoch, handle.dest
                ),
            )

    def _on_message(self, msg: object) -> None:
        handoff_id = getattr(msg, "handoff_id", None)
        if handoff_id is None:
            return
        handle = self._active.get(handoff_id)
        if handle is None:
            return  # late duplicate of a finished handoff
        if isinstance(msg, M.MigrateOffer) and handle.phase == "request":
            if not msg.found:
                handle.found = False
                handle.done = True
                self._finish(handle)
                return
            handle.offer = msg
            handle.phase = "install"
            self._drive(handle)
        elif isinstance(msg, M.MigrateInstalled) and handle.phase == "install":
            handle.phase = "commit"
            self._drive(handle)
        elif isinstance(msg, M.MigrateDone) and handle.phase == "commit":
            handle.done = True
            self._finish(handle)

    def _finish(self, handle: MigrationHandle) -> None:
        if handle._timer is not None:
            handle._timer.cancel()
            handle._timer = None
        self._active.pop(handle.handoff_id, None)
        if handle.on_done is not None:
            callback, handle.on_done = handle.on_done, None
            callback(handle)

    # ------------------------------------------------------------------
    # Placement / rebalancing
    # ------------------------------------------------------------------
    def placement(self) -> Dict[str, List[str]]:
        """Current placement: SHB name → hosted subscription ids."""
        return {
            shb.name: sorted(sub.sub_id for sub in shb.registry.all())
            for shb in self.overlay.shbs
            if not shb.draining
        }

    def rebalance(
        self,
        policy: Callable[
            [Dict[str, List[str]]], List[Tuple[str, str, str]]
        ] = least_loaded_policy,
        on_done: Optional[Callable[[MigrationHandle], None]] = None,
    ) -> List[MigrationHandle]:
        """Apply a placement policy's planned moves as migrations."""
        return [
            self.migrate(sub_id, src, dst, on_done=on_done)
            for sub_id, src, dst in policy(self.placement())
        ]

    # ------------------------------------------------------------------
    # Control links
    # ------------------------------------------------------------------
    def _resolve(self, ref: ShbRef) -> SubscriberHostingBroker:
        if isinstance(ref, SubscriberHostingBroker):
            return ref
        for shb in [*self.overlay.shbs, *self.overlay.retired]:
            if shb.name == ref and isinstance(shb, SubscriberHostingBroker):
                return shb
        raise ConfigurationError(f"no SHB named {ref}")

    def _send_to(self, shb_name: str, msg: object) -> None:
        """Send on the control link, (re)establishing it as needed.

        A crash of the SHB severs the link permanently (client links
        are not restored); the next retry tick reconnects once the node
        is back.  While the node is down the send is simply skipped —
        the retry timer tries again.
        """
        shb = self._resolve(shb_name)
        if shb.node.is_down:
            return
        link = self._links.get(shb.name)
        if link is None or link.down:
            link = Link(self.scheduler, self.node, shb.node, self.client_latency_ms)
            send = shb.attach_client(link, self.node)
            link.end_for_sender(shb.node).on_receive(
                self._on_message, lambda _msg: 0.01
            )
            self._links[shb.name] = link
            self._sends[shb.name] = send
        self._sends[shb.name].send(msg)  # type: ignore[attr-defined]
