"""Invariant oracles for the crash-point explorer.

Each oracle inspects the *final* state of an explored run (after the
injected crash, recovery, and convergence) and returns a list of
human-readable violation strings — empty means the invariant held.
The families, matching PROTOCOL.md §7.1:

1. **Exactly-once delivery** — no duplicate event ids, no per-pubend
   timestamp order violations at any subscriber.
2. **Completeness and gap honesty** — every durably-logged event that
   matches a subscriber's predicate is delivered; the explorer scenario
   releases a tick only after *every* subscriber has acked it, so a
   ``GapMessage`` (an admission of loss) is always a violation, and so
   is an event the durable log never contained.
3. **PFS backpointer-chain integrity** — from every live
   ``last_index`` entry, the per-subscriber chain must walk down
   decodable records that all contain the subscriber, with strictly
   decreasing indexes and timestamps, terminating at ⊥ or the chop
   point.
4. **Chop-point agreement** — the PHB event log is never chopped past
   the released bound, the released bound never passes any SHB's
   *committed* latestDelivered, and a PFS chop never passes committed
   latestDelivered + 1.
5. **Monotone knowledge** — the committed latestDelivered sampled
   throughout the run (including across the crash) never regresses,
   and the post-recovery volatile latestDelivered ends at or above
   every committed sample.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = [
    "KnowledgeMonotonicityProbe",
    "all_shbs",
    "check_all",
    "check_chop_agreement",
    "check_delivery",
    "check_pfs_chains",
]


# ----------------------------------------------------------------------
# 1 + 2: exactly-once, completeness, gap honesty
# ----------------------------------------------------------------------
def check_delivery(
    subscribers: List[object],
    expected_of: Callable[[object], Dict[str, int]],
    truth_ids: Optional[set] = None,
) -> List[str]:
    violations: List[str] = []
    for sub in subscribers:
        if sub.duplicate_events:
            violations.append(
                f"{sub.sub_id}: {sub.duplicate_events} duplicate events"
            )
        if sub.stats.order_violations:
            violations.append(
                f"{sub.sub_id}: {sub.stats.order_violations} order violations"
            )
        if sub.stats.gaps:
            violations.append(
                f"{sub.sub_id}: {sub.stats.gaps} gap messages although every "
                f"released tick was fully acked (ranges "
                f"{sub.stats.gap_ranges[:3]})"
            )
        expected = expected_of(sub)
        missing = sorted(set(expected) - sub.received_event_id_set)
        if missing:
            ticks = sorted(expected[eid] for eid in missing)
            violations.append(
                f"{sub.sub_id}: {len(missing)} durably logged matching "
                f"events never delivered (ticks {ticks[:5]}...)"
            )
        if truth_ids is not None:
            extra = sub.received_event_id_set - truth_ids
            if extra:
                violations.append(
                    f"{sub.sub_id}: {len(extra)} delivered events absent "
                    f"from the durable log"
                )
    return violations


# ----------------------------------------------------------------------
# 3: PFS backpointer-chain integrity
# ----------------------------------------------------------------------
def check_pfs_chains(shb: object) -> List[str]:
    from ..pfs.records import NO_PREVIOUS, PFSRecordBatch, decode_record

    violations: List[str] = []
    for pubend, state in sorted(shb.pfs._pubends.items()):
        stream = state.stream
        if state.durable_next_index > stream.next_index:
            violations.append(
                f"{shb.name}/{pubend}: durable_next_index "
                f"{state.durable_next_index} beyond stream next_index "
                f"{stream.next_index}"
            )
        for num in sorted(state.last_index):
            index = state.last_index[num]
            prev_ts: Optional[int] = None
            hops = 0
            while index != NO_PREVIOUS and index >= stream.chopped_below:
                if index >= stream.next_index:
                    violations.append(
                        f"{shb.name}/{pubend}/sub{num}: chain points at "
                        f"index {index} beyond next_index {stream.next_index}"
                    )
                    break
                try:
                    record = decode_record(stream.read(index))
                except Exception as exc:  # noqa: BLE001 - oracle boundary
                    violations.append(
                        f"{shb.name}/{pubend}/sub{num}: unreadable record "
                        f"at index {index}: {exc!r}"
                    )
                    break
                # The logical chain: the subscriber's ticks within this
                # record, newest to oldest (a row record has one; a
                # columnar batch any number), then the pre-record
                # backpointer.  Timestamps must strictly decrease across
                # the whole walk.
                if isinstance(record, PFSRecordBatch):
                    ticks = [
                        record.timestamps[i]
                        for i in reversed(record.ticks_for(num))
                    ]
                else:
                    ticks = [record.timestamp]
                bad_ts = False
                for t in ticks:
                    if prev_ts is not None and t >= prev_ts:
                        violations.append(
                            f"{shb.name}/{pubend}/sub{num}: non-decreasing "
                            f"timestamp {t} at index {index}"
                        )
                        bad_ts = True
                        break
                    prev_ts = t
                if bad_ts:
                    break
                prev = record.prev_index_of(num)
                if prev is None:
                    violations.append(
                        f"{shb.name}/{pubend}/sub{num}: record at index "
                        f"{index} does not contain the subscriber"
                    )
                    break
                if prev != NO_PREVIOUS and prev >= index:
                    violations.append(
                        f"{shb.name}/{pubend}/sub{num}: backpointer at "
                        f"index {index} does not decrease ({prev})"
                    )
                    break
                index = prev
                hops += 1
                if hops > stream.next_index + 1:
                    violations.append(
                        f"{shb.name}/{pubend}/sub{num}: backpointer cycle"
                    )
                    break
    return violations


# ----------------------------------------------------------------------
# 4: chop-point agreement across event log / PFS / release tables
# ----------------------------------------------------------------------
def all_shbs(overlay: object, include_retired: bool = True) -> List[object]:
    """Every SHB the run ever had — live plus (by default) retired.

    Dynamic-topology runs detach drained brokers into
    ``overlay.retired``; their final durable state must still satisfy
    every invariant, so the oracles audit them too.
    """
    trees = getattr(overlay, "trees", None)
    if trees is not None:  # a Federation: audit every tree
        shbs: List[object] = []
        for tree in trees:
            shbs.extend(all_shbs(tree, include_retired))
        return shbs
    shbs = list(overlay.shbs)
    if include_retired:
        shbs.extend(
            b for b in getattr(overlay, "retired", [])
            if hasattr(b, "constreams")
        )
    return shbs


def check_chop_agreement(overlay: object) -> List[str]:
    trees = getattr(overlay, "trees", None)
    if trees is not None:  # a Federation: each tree checks on its own
        violations: List[str] = []
        for tree in trees:
            violations.extend(check_chop_agreement(tree))
        return violations
    violations = []
    for name, pubend in sorted(overlay.phb.pubends.items()):
        released_bound = pubend.lost_below - 1
        log_chop = pubend.log.chopped_below
        if log_chop > released_bound + 1:
            violations.append(
                f"phb/{name}: event log chopped below {log_chop} but "
                f"released bound is only {released_bound}"
            )
        for shb in all_shbs(overlay):
            if name not in shb.constreams:
                continue
            committed_ld = shb.constreams[name].committed_latest_delivered
            # The released bound must trail every *live* SHB's durable
            # replay point.  A retired SHB's cursor froze at detach and
            # it will never replay — the tree legitimately releases
            # past it, so only the SHB-local PFS check applies there.
            if shb in overlay.shbs and released_bound > committed_ld:
                violations.append(
                    f"phb/{name}: released bound {released_bound} beyond "
                    f"{shb.name}'s committed latestDelivered {committed_ld}"
                )
            state = shb.pfs._pubends.get(name)
            if state is not None and state.chopped_from_ts > committed_ld + 1:
                violations.append(
                    f"{shb.name}/{name}: PFS chopped from "
                    f"{state.chopped_from_ts} beyond committed "
                    f"latestDelivered {committed_ld}"
                )
    return violations


# ----------------------------------------------------------------------
# 5: monotone knowledge
# ----------------------------------------------------------------------
class KnowledgeMonotonicityProbe:
    """Samples each pubend's *committed* latestDelivered over the run.

    The committed value lives in the SHB's meta table, survives crashes
    by construction, and every put is the max seen so far — so any
    regression between consecutive samples (the crash boundary
    included) is a durability bug.  Sampling reads the committed view
    directly off the table, so it works while the broker is down and
    perturbs nothing.
    """

    def __init__(
        self,
        scheduler: object,
        shb: object,
        pubends: List[str],
        interval_ms: float = 100.0,
    ) -> None:
        self.shb = shb
        self.pubends = list(pubends)
        self.high_water: Dict[str, int] = {p: 0 for p in self.pubends}
        self.violations: List[str] = []
        scheduler.every(interval_ms, self._sample)

    def _sample(self) -> None:
        for pubend in self.pubends:
            value = self.shb.meta_table.get_committed(
                f"latestDelivered:{pubend}", 0
            )
            if value < self.high_water[pubend]:
                self.violations.append(
                    f"{self.shb.name}/{pubend}: committed latestDelivered "
                    f"regressed {self.high_water[pubend]} -> {value}"
                )
            self.high_water[pubend] = max(self.high_water[pubend], value)

    def check_final(self) -> List[str]:
        self._sample()
        violations = list(self.violations)
        for pubend in self.pubends:
            live = (
                self.shb.constreams[pubend].latest_delivered
                if pubend in self.shb.constreams else 0
            )
            if live < self.high_water[pubend]:
                violations.append(
                    f"{self.shb.name}/{pubend}: post-recovery "
                    f"latestDelivered {live} below committed high-water "
                    f"{self.high_water[pubend]}"
                )
        return violations


# ----------------------------------------------------------------------
# Entry point used by the explorer
# ----------------------------------------------------------------------
def check_all(
    overlay: object,
    subscribers: List[object],
    expected_of: Callable[[object], Dict[str, int]],
    knowledge_probe: object = None,
    truth_ids: Optional[set] = None,
) -> List[str]:
    """Run every oracle family over every SHB the run ever had.

    ``knowledge_probe`` accepts one probe or a list of them — dynamic
    topologies run one :class:`KnowledgeMonotonicityProbe` per SHB.
    Retired (drained) SHBs are audited too: their PFS chains must still
    decode and their chop points must still agree with their own frozen
    cursors.
    """
    violations = check_delivery(subscribers, expected_of, truth_ids)
    for shb in all_shbs(overlay):
        violations.extend(check_pfs_chains(shb))
    violations.extend(check_chop_agreement(overlay))
    probes = (
        knowledge_probe
        if isinstance(knowledge_probe, (list, tuple))
        else ([knowledge_probe] if knowledge_probe is not None else [])
    )
    for probe in probes:
        violations.extend(probe.check_final())
    return violations
