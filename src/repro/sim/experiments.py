"""The paper's experiments as reusable harness functions.

Each function builds the relevant Figure-3 topology, drives the
Section-5 workload, samples the metrics the paper plots, and returns a
result object.  The ``benchmarks/`` directory is a thin layer over
these: one bench per table/figure, printing the same rows/series the
paper reports.  See DESIGN.md §3 for the experiment index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..broker.topology import (
    Federation,
    build_chain,
    build_deep_overlay,
    build_single_broker,
    build_star,
    build_tree,
    build_two_broker,
    place_durable_subscribers,
)
from ..client.subscriber import DurableSubscriber
from ..jms.ctstore import CheckpointCommitService
from ..jms.session import AUTO_ACKNOWLEDGE, JMSDurableSubscriber
from ..metrics.collector import MetricsCollector
from ..metrics.report import percentile
from ..net.node import Node
from ..net.simtime import Scheduler
from ..util.rate import Series
from ..workloads.generator import (
    ChurnSchedule,
    PaperWorkloadSpec,
    make_publishers,
    make_subscribers,
)


# ---------------------------------------------------------------------------
# Scalability (Figure 4)
# ---------------------------------------------------------------------------
@dataclass
class ScalabilityResult:
    n_shbs: int
    subscribers: int
    churn: bool
    offered_rate: float          # events/s the subscribers should receive
    achieved_rate: float         # events/s they actually received
    phb_idle: float              # CPU idle fraction at the PHB
    shb_idle_mean: float         # mean CPU idle fraction across SHBs
    single_broker: bool = False
    disconnects: int = 0
    catchup_count: int = 0

    @property
    def efficiency(self) -> float:
        return self.achieved_rate / self.offered_rate if self.offered_rate else 0.0


@dataclass
class ScalabilitySetup:
    """Everything :func:`drive_scalability` needs, built untimed.

    Splitting construction from driving lets benchmarks keep workload
    assembly (brokers, links, clients, churn schedule) out of the timed
    region; the simulated run is identical either way because nothing
    here advances the clock.
    """

    sim: Scheduler
    overlay: object
    publishers: List[object]
    subscribers: List[DurableSubscriber]
    schedule: Optional[ChurnSchedule]
    spec: PaperWorkloadSpec
    n_shbs: int
    subs_per_shb: int
    churn: bool
    duration_ms: float
    warmup_ms: float
    single_broker: bool


def prepare_scalability(
    n_shbs: int,
    subs_per_shb: int,
    churn: bool = False,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 5_000.0,
    spec: Optional[PaperWorkloadSpec] = None,
    churn_period_ms: float = 60_000.0,
    churn_down_ms: float = 1_000.0,
    single_broker: bool = False,
    batch_window_ms: float = 0.0,
) -> ScalabilitySetup:
    """Build the Figure-4 topology and workload without running it."""
    spec = spec or PaperWorkloadSpec()
    sim = Scheduler()
    if single_broker:
        overlay = build_single_broker(
            sim, spec.pubend_names(), batch_window_ms=batch_window_ms
        )
    elif n_shbs == 1:
        overlay = build_two_broker(
            sim, spec.pubend_names(), batch_window_ms=batch_window_ms
        )
    else:
        overlay = build_star(
            sim, spec.pubend_names(), n_shbs=n_shbs, batch_window_ms=batch_window_ms
        )
    publishers = make_publishers(sim, overlay.phb, spec)
    subscribers = make_subscribers(sim, overlay.shbs, spec, subs_per_shb)
    shb_of = {sub.sub_id: overlay.shbs[i // subs_per_shb] for i, sub in enumerate(subscribers)}
    schedule: Optional[ChurnSchedule] = None
    if churn:
        schedule = ChurnSchedule(
            sim,
            subscribers,
            shb_of=lambda s: shb_of[s.sub_id],
            period_ms=churn_period_ms,
            down_ms=churn_down_ms,
            start_after_ms=warmup_ms,
        )
    return ScalabilitySetup(
        sim=sim,
        overlay=overlay,
        publishers=publishers,
        subscribers=subscribers,
        schedule=schedule,
        spec=spec,
        n_shbs=n_shbs,
        subs_per_shb=subs_per_shb,
        churn=churn,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        single_broker=single_broker,
    )


def drive_scalability(setup: ScalabilitySetup) -> ScalabilityResult:
    """Run a prepared Figure-4 scenario: warmup, measure, report."""
    sim = setup.sim
    overlay = setup.overlay
    subscribers = setup.subscribers
    sim.run_until(setup.warmup_ms)
    start_events = sum(s.stats.events for s in subscribers)
    phb_busy_0 = overlay.phb.node.busy.total_busy_ms
    shb_busy_0 = [s.node.busy.total_busy_ms for s in overlay.shbs]
    t0 = sim.now
    sim.run_until(setup.warmup_ms + setup.duration_ms)
    elapsed = sim.now - t0
    achieved = (sum(s.stats.events for s in subscribers) - start_events) * 1000.0 / elapsed
    phb_idle = 1.0 - (overlay.phb.node.busy.total_busy_ms - phb_busy_0) / elapsed
    shb_idles = [
        1.0 - (s.node.busy.total_busy_ms - b0) / elapsed
        for s, b0 in zip(overlay.shbs, shb_busy_0)
    ]
    if setup.schedule is not None:
        setup.schedule.stop()
    for pub in setup.publishers:
        pub.stop()
    # When churn is on, subscribers spend down-time missing events; the
    # offered rate is reduced by the expected disconnected fraction.
    offered = setup.spec.per_subscriber_rate * setup.subs_per_shb * setup.n_shbs
    return ScalabilityResult(
        n_shbs=setup.n_shbs,
        subscribers=setup.subs_per_shb * setup.n_shbs,
        churn=setup.churn,
        offered_rate=offered,
        achieved_rate=achieved,
        phb_idle=phb_idle,
        shb_idle_mean=sum(shb_idles) / len(shb_idles),
        single_broker=setup.single_broker,
        disconnects=setup.schedule.disconnects if setup.schedule else 0,
        catchup_count=sum(len(s.catchup_durations_ms) for s in overlay.shbs),
    )


def run_scalability(
    n_shbs: int,
    subs_per_shb: int,
    churn: bool = False,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 5_000.0,
    spec: Optional[PaperWorkloadSpec] = None,
    churn_period_ms: float = 60_000.0,
    churn_down_ms: float = 1_000.0,
    single_broker: bool = False,
    batch_window_ms: float = 0.0,
) -> ScalabilityResult:
    """One bar of Figure 4: aggregate subscriber rate for a topology.

    Churn defaults are time-compressed relative to the paper (which
    used 300 s period / 5 s down over long runs) with the same
    down-to-period ratio, so the steady-state fraction of subscribers
    in catchup matches; pass the paper's values for a full-length run.
    """
    return drive_scalability(
        prepare_scalability(
            n_shbs,
            subs_per_shb,
            churn=churn,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            spec=spec,
            churn_period_ms=churn_period_ms,
            churn_down_ms=churn_down_ms,
            single_broker=single_broker,
            batch_window_ms=batch_window_ms,
        )
    )


# ---------------------------------------------------------------------------
# Scale: 10^5 durable subscribers on a wide/deep forest (not a paper
# figure; the regime the paper's Summit deployment targets)
# ---------------------------------------------------------------------------
@dataclass
class ScaleResult:
    """Outcome of one :func:`run_scale` point.

    ``matched_pairs`` counts (event, subscriber) pairs the SHBs logged
    to their PFSs — the durable fan-out work the system performs for a
    subscriber whether or not a client is connected, recovered from the
    record format itself (8 + 16n bytes per record, paper footnote 2).
    ``matched_pairs_per_wall_s`` is the headline throughput the scale
    bench gates.
    """

    n_subscribers: int
    n_trees: int
    n_intermediates: int
    n_shbs: int
    n_groups: int
    connected_clients: int
    events_published: int
    pfs_records: int
    pfs_bytes: int
    matched_pairs: int
    client_events: int
    sim_ms: float
    drive_wall_s: float

    @property
    def matched_pairs_per_wall_s(self) -> float:
        return self.matched_pairs / self.drive_wall_s if self.drive_wall_s else 0.0


@dataclass
class ScaleSetup:
    """A built (but not yet run) scale scenario.

    Construction — federation wiring, 10^4..10^5 headless durable
    registrations, live clients — is the expensive, *untimed* half;
    benchmarks wrap :func:`prepare_scale` in ``tracemalloc`` to measure
    per-subscriber memory and time only :func:`drive_scale`.
    """

    sim: Scheduler
    federation: Federation
    publishers: List[object]
    clients: List[DurableSubscriber]
    placed: Dict[str, List[str]]
    n_subscribers: int
    n_groups: int
    events_per_pubend: int
    rate_per_s: float
    warmup_ms: float
    drain_ms: float


def scale_topology(n_subscribers: int) -> Dict[str, object]:
    """Topology preset per scale point: wider and deeper as N grows."""
    if n_subscribers <= 10_000:
        # 2 trees x (1 level of 2 intermediates) x 8 SHBs = 32 SHBs.
        return {"n_trees": 2, "fanout": (2,), "shbs_per_leaf": 8,
                "spares_per_level": 1}
    if n_subscribers <= 50_000:
        # 2 trees x (2 x 2 levels) x 8 SHBs = 128 SHBs.
        return {"n_trees": 2, "fanout": (2, 2), "shbs_per_leaf": 8,
                "spares_per_level": 1}
    # 2 trees x (2 x 3 levels) x 17 SHBs = 204 SHBs.
    return {"n_trees": 2, "fanout": (2, 3), "shbs_per_leaf": 17,
            "spares_per_level": 1}


def prepare_scale(
    n_subscribers: int,
    n_groups: int = 500,
    connected_clients: int = 24,
    events_per_pubend: int = 800,
    rate_per_s: float = 2_000.0,
    warmup_ms: float = 2_500.0,
    drain_ms: float = 1_500.0,
    seed: int = 0,
    topology: Optional[Dict[str, object]] = None,
    **shb_kwargs: object,
) -> ScaleSetup:
    """Build a scale point: forest, headless durables, live clients.

    ``n_subscribers`` durable subscriptions are placed across the
    forest's SHBs; ``connected_clients`` of the load are real
    :class:`DurableSubscriber` clients (ack timers, client links), the
    rest are registered headless — a disconnected durable subscription
    still costs its registry row, matching work and PFS records, which
    is exactly the per-subscriber state under test.  Subscriptions
    share ``n_groups`` distinct predicates (the shared-signature
    regime), so each event matches ~``N_tree/n_groups`` subscribers in
    its tree.

    The per-SHB subscription refresh defaults to a period past the end
    of the run: a full-registry anti-entropy resend of 10^5 rows per
    tick would swamp a short scale run with control traffic that the
    incremental ``SubscriptionAdd`` path already covers.
    """
    from ..client.publisher import PeriodicPublisher
    from ..matching.predicates import In

    shb_kwargs.setdefault("subscription_refresh_ms", 300_000.0)
    topo = dict(topology or scale_topology(n_subscribers))
    sim = Scheduler()
    federation = build_deep_overlay(sim, **topo, **shb_kwargs)  # type: ignore[arg-type]
    predicates = [In("group", (g,)) for g in range(n_groups)]

    headless = n_subscribers - connected_clients
    placed = place_durable_subscribers(
        federation, headless, predicates, seed=seed, prefix="scale-s"
    )

    # Live clients ride on top: seeded placement, 8 per client machine.
    rng_src = random.Random(f"scale-clients:{seed}")
    shbs = federation.shbs
    clients: List[DurableSubscriber] = []
    machines: List[Node] = []
    for i in range(connected_clients):
        m_idx = i // 8
        while m_idx >= len(machines):
            machines.append(Node(sim, f"scale-m{len(machines) + 1}"))
        sub = DurableSubscriber(
            sim, f"scale-live{i}", machines[m_idx],
            predicates[rng_src.randrange(n_groups)],
        )
        sub.connect(shbs[rng_src.randrange(len(shbs))])
        clients.append(sub)

    publishers: List[object] = []
    for tree in federation.trees:
        for pubend in tree.pubend_names:
            pub = PeriodicPublisher(
                sim, tree.phb, pubend, rate_per_s,
                attribute_fn=lambda i: {"group": i % n_groups},
            )
            publishers.append(pub)
    return ScaleSetup(
        sim=sim,
        federation=federation,
        publishers=publishers,
        clients=clients,
        placed=placed,
        n_subscribers=n_subscribers,
        n_groups=n_groups,
        events_per_pubend=events_per_pubend,
        rate_per_s=rate_per_s,
        warmup_ms=warmup_ms,
        drain_ms=drain_ms,
    )


def drive_scale(setup: ScaleSetup) -> ScaleResult:
    """Run a prepared scale point and report durable fan-out throughput.

    The warmup run absorbs subscription-add propagation (10^5 control
    messages crossing the forest) so the timed window measures the
    steady state: publish → disseminate through the intermediate levels
    → match at every SHB → PFS-log each matched subscriber → deliver to
    the connected clients.
    """
    import time as _time

    sim = setup.sim
    federation = setup.federation
    sim.run_until(setup.warmup_ms)
    shbs = federation.shbs
    writes_0 = sum(s.pfs.writes for s in shbs)
    bytes_0 = sum(s.pfs.bytes_written for s in shbs)
    publish_ms = setup.events_per_pubend * 1000.0 / setup.rate_per_s
    for pub in setup.publishers:
        pub.start(first_delay_ms=0.0)
    stop_at = setup.warmup_ms + publish_ms
    for pub in setup.publishers:
        sim.at(stop_at, pub.stop)
    t0 = _time.perf_counter()
    sim.run_until(stop_at + setup.drain_ms)
    drive_wall_s = _time.perf_counter() - t0
    records = sum(s.pfs.writes for s in shbs) - writes_0
    pfs_bytes = sum(s.pfs.bytes_written for s in shbs) - bytes_0
    # Invert the record format (8 + 16n bytes): n summed over records.
    matched_pairs = (pfs_bytes - 8 * records) // 16
    return ScaleResult(
        n_subscribers=setup.n_subscribers,
        n_trees=len(federation.trees),
        n_intermediates=sum(len(t.intermediates) for t in federation.trees),
        n_shbs=len(shbs),
        n_groups=setup.n_groups,
        connected_clients=len(setup.clients),
        events_published=sum(p.published for p in setup.publishers),
        pfs_records=records,
        pfs_bytes=pfs_bytes,
        matched_pairs=int(matched_pairs),
        client_events=sum(s.stats.events for s in setup.clients),
        sim_ms=sim.now,
        drive_wall_s=drive_wall_s,
    )


def run_scale(n_subscribers: int, **kwargs: object) -> ScaleResult:
    """Build and run one scale point (see :func:`prepare_scale`)."""
    return drive_scale(prepare_scale(n_subscribers, **kwargs))


# ---------------------------------------------------------------------------
# End-to-end latency (Section 5 summary result 1)
# ---------------------------------------------------------------------------
@dataclass
class LatencyResult:
    hops: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    logging_mean_ms: float       # publish -> durable at the PHB
    samples: int


def run_latency(
    n_intermediates: int = 3,
    rate_per_s: float = 50.0,
    duration_ms: float = 30_000.0,
    spec_payload: int = 250,
) -> LatencyResult:
    """End-to-end latency over a broker chain (5 brokers by default).

    Events carry their publish time; the subscriber records the
    difference on consumption.  The PHB-side logging component is
    measured at the pubend (publish→durable), reproducing the paper's
    50 ms total / 44 ms logging split.
    """
    sim = Scheduler()
    overlay = build_chain(sim, ["P1"], n_intermediates=n_intermediates)
    latencies: List[float] = []

    machine = Node(sim, "client")
    from ..matching.predicates import Everything

    sub = DurableSubscriber(
        sim, "s1", machine, Everything(),
        on_event=lambda msg: latencies.append(sim.now - msg.event.attributes["pub_time"]),
    )
    sub.connect(overlay.shbs[0])

    from ..client.publisher import PeriodicPublisher

    pub = PeriodicPublisher(
        sim, overlay.phb, "P1", rate_per_s,
        attribute_fn=lambda i: {"group": 0, "pub_time": sim.now},
        payload_bytes=spec_payload,
    )
    pub.start()
    sim.run_until(duration_ms)
    pub.stop()
    sim.run_until(duration_ms + 2_000.0)
    logging = overlay.phb.pubends["P1"].log_latency_ms
    return LatencyResult(
        hops=n_intermediates + 2,
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        logging_mean_ms=sum(logging) / len(logging) if logging else 0.0,
        samples=len(latencies),
    )


# ---------------------------------------------------------------------------
# Traced latency histograms (observability layer over the same chain)
# ---------------------------------------------------------------------------
@dataclass
class LatencyTraceResult:
    """Histogram-based latency result from the sampling tracer.

    Unlike :class:`LatencyResult` (which needs the workload to smuggle
    ``pub_time`` through event attributes), this uses the tracer's
    span records, so it also measures per-hop components and the
    catchup lag of a subscriber that reconnects mid-run.
    """

    sample_rate: float
    traces_started: int
    consumes_observed: int
    e2e_p50_ms: float
    e2e_p95_ms: float
    e2e_p99_ms: float
    e2e_samples: int
    catchup_p50_ms: float
    catchup_p95_ms: float
    catchup_p99_ms: float
    catchup_samples: int
    span_histograms: Dict[str, Dict[str, object]]
    export: Dict[str, object]


def run_latency_trace(
    n_intermediates: int = 1,
    rate_per_s: float = 100.0,
    duration_ms: float = 20_000.0,
    sample_rate: float = 0.25,
    seed: int = 7,
    disconnect_at_ms: float = 6_000.0,
    reconnect_at_ms: float = 10_000.0,
    export_path: Optional[str] = None,
) -> LatencyTraceResult:
    """Traced latency over a broker chain, with a mid-run reconnect.

    Two Everything() subscribers share one SHB: ``steady`` stays
    connected for the whole run (its consumes populate
    ``e2e.publish_deliver``); ``churner`` disconnects and reconnects,
    so events published while it was away reach it through a catchup
    stream and populate ``e2e.catchup_lag`` — the quantity a
    reconnecting durable subscriber actually experiences (it includes
    the disconnected span).
    """
    from ..client.publisher import PeriodicPublisher
    from ..matching.predicates import Everything
    from ..metrics.histogram import LatencyHistogram
    from ..metrics.report import export_json
    from ..metrics.trace import E2E_CATCHUP_LAG, E2E_PUBLISH_DELIVER, install_tracer

    sim = Scheduler()
    tracer = install_tracer(sim, sample_rate, seed=seed)
    overlay = build_chain(sim, ["P1"], n_intermediates=n_intermediates)
    shb = overlay.shbs[0]

    steady = DurableSubscriber(sim, "steady", Node(sim, "m-steady"), Everything())
    steady.connect(shb)
    churner = DurableSubscriber(sim, "churner", Node(sim, "m-churner"), Everything())
    churner.connect(shb)
    sim.at(disconnect_at_ms, churner.disconnect)
    sim.at(reconnect_at_ms, lambda: churner.connect(shb))

    pub = PeriodicPublisher(
        sim, overlay.phb, "P1", rate_per_s,
        attribute_fn=lambda i: {"group": i % 4},
    )
    collector = MetricsCollector(sim, interval_ms=1_000.0)
    collector.latency(
        "phb.log_latency", lambda: overlay.phb.pubends["P1"].log_latency_ms
    )
    collector.counter_rate("published", lambda: float(pub.published))
    collector.cpu_idle("phb_idle", overlay.phb.node)
    collector.start()
    pub.start()
    sim.run_until(duration_ms)
    pub.stop()
    sim.run_until(duration_ms + 5_000.0)  # drain catchup + in-flight
    collector.stop()

    e2e = tracer.histograms.get(E2E_PUBLISH_DELIVER, LatencyHistogram(E2E_PUBLISH_DELIVER))
    lag = tracer.histograms.get(E2E_CATCHUP_LAG, LatencyHistogram(E2E_CATCHUP_LAG))
    export = export_json(
        collector,
        path=export_path,
        tracer=tracer,
        extra={
            "experiment": "run_latency_trace",
            "hops": n_intermediates + 2,
            "rate_per_s": rate_per_s,
            "duration_ms": duration_ms,
            "events_consumed_steady": steady.stats.events,
            "events_consumed_churner": churner.stats.events,
        },
    )
    return LatencyTraceResult(
        sample_rate=sample_rate,
        traces_started=tracer.started,
        consumes_observed=tracer.consumed,
        e2e_p50_ms=e2e.p50,
        e2e_p95_ms=e2e.p95,
        e2e_p99_ms=e2e.p99,
        e2e_samples=e2e.count,
        catchup_p50_ms=lag.p50,
        catchup_p95_ms=lag.p95,
        catchup_p99_ms=lag.p99,
        catchup_samples=lag.count,
        span_histograms={
            name: hist.snapshot() for name, hist in sorted(tracer.histograms.items())
        },
        export=export,
    )


# ---------------------------------------------------------------------------
# Catchup durations & stream rates (Figures 5 and 6)
# ---------------------------------------------------------------------------
@dataclass
class StreamRatesResult:
    catchup_durations_ms: List[float]
    latest_delivered_rate: Series       # tick-ms advanced per second
    released_rate: Series
    latest_delivered_value: Series
    released_value: Series


def run_stream_rates(
    duration_ms: float = 60_000.0,
    churn_period_ms: float = 20_000.0,
    churn_down_ms: float = 1_000.0,
    subs: int = 12,
    gc_pause_ms: float = 0.0,
    gc_period_ms: float = 10_000.0,
    spec: Optional[PaperWorkloadSpec] = None,
    batch_window_ms: float = 0.0,
) -> StreamRatesResult:
    """The 2-broker experiment behind Figures 5 and 6.

    ``gc_pause_ms`` injects periodic SHB CPU stalls reproducing the
    Java-GC dips the paper observes in the latestDelivered rate.
    """
    spec = spec or PaperWorkloadSpec()
    sim = Scheduler()
    overlay = build_two_broker(
        sim, spec.pubend_names(), batch_window_ms=batch_window_ms
    )
    shb = overlay.shbs[0]
    publishers = make_publishers(sim, overlay.phb, spec)
    subscribers = make_subscribers(sim, overlay.shbs, spec, subs)
    ChurnSchedule(
        sim, subscribers, shb_of=lambda s: shb,
        period_ms=churn_period_ms, down_ms=churn_down_ms,
    )
    if gc_pause_ms > 0:
        sim.every(gc_period_ms, lambda: shb.node.stall(gc_pause_ms))
    pubend = spec.pubend_names()[0]
    collector = MetricsCollector(sim, interval_ms=1000.0)
    collector.advance_rate("latestDelivered_rate", lambda: float(shb.latest_delivered(pubend)))
    collector.advance_rate("released_rate", lambda: float(shb.released(pubend)))
    collector.gauge("latestDelivered", lambda: float(shb.latest_delivered(pubend)))
    collector.gauge("released", lambda: float(shb.released(pubend)))
    collector.start()
    sim.run_until(duration_ms)
    for pub in publishers:
        pub.stop()
    collector.stop()
    return StreamRatesResult(
        catchup_durations_ms=[d for _t, d in shb.catchup_durations_ms],
        latest_delivered_rate=collector.get("latestDelivered_rate"),
        released_rate=collector.get("released_rate"),
        latest_delivered_value=collector.get("latestDelivered"),
        released_value=collector.get("released"),
    )


# ---------------------------------------------------------------------------
# SHB failure and recovery (Figures 7 and 8)
# ---------------------------------------------------------------------------
@dataclass
class FailureResult:
    latest_delivered: Series            # raw value over time (Figure 7 top)
    released: Series                    # raw value over time (Figure 7 bottom)
    machine_rates: List[Series]         # per client machine (Figure 8 top)
    phb_idle: Series                    # Figure 8 bottom
    shb_idle: Series
    catchup_durations_ms: List[float]
    disconnected_ms: List[float]        # how long each subscriber was down
    normal_slope: float                 # tick-ms/s before the crash
    recovery_slope: float               # tick-ms/s while the constream nacks
    pfs_reads_reaching_last_fraction: float
    exactly_once_ok: bool


def run_shb_failure(
    crash_at_ms: float = 20_000.0,
    down_ms: float = 25_000.0,
    n_subs: int = 40,
    subs_per_machine: int = 8,
    total_ms: float = 260_000.0,
    catchup_buffer_qs: int = 5000,
    spec: Optional[PaperWorkloadSpec] = None,
) -> FailureResult:
    """Section 5.3: crash the SHB, delay reconnection until the
    constream has recovered, then reconnect all 40 subscribers at once.
    """
    spec = spec or PaperWorkloadSpec()
    sim = Scheduler()
    overlay = build_two_broker(
        sim, spec.pubend_names(), catchup_buffer_qs=catchup_buffer_qs
    )
    shb = overlay.shbs[0]
    publishers = make_publishers(sim, overlay.phb, spec)
    subscribers = make_subscribers(
        sim, overlay.shbs, spec, n_subs, subs_per_machine=subs_per_machine
    )
    machines: List[Node] = []
    for sub in subscribers:
        if sub.node not in machines:
            machines.append(sub.node)
    pubend = spec.pubend_names()[0]

    collector = MetricsCollector(sim, interval_ms=1000.0)
    collector.gauge("latestDelivered", lambda: float(shb.latest_delivered(pubend)))
    collector.gauge("released", lambda: float(shb.released(pubend)))
    for i, machine in enumerate(machines):
        events_of = [s for s in subscribers if s.node is machine]
        collector.counter_rate(
            f"machine{i + 1}_rate", lambda evs=events_of: float(sum(s.stats.events for s in evs))
        )
    collector.cpu_idle("phb_idle", overlay.phb.node)
    collector.cpu_idle("shb_idle", shb.node)
    collector.start()

    # Normal operation, then crash.
    sim.run_until(crash_at_ms)
    ld_before = shb.latest_delivered(pubend)
    disconnect_time = sim.now
    shb.fail_for(down_ms)
    recover_time = crash_at_ms + down_ms

    # After recovery, wait until the constream has nacked and received
    # everything it missed (latestDelivered near the pubend's time),
    # then reconnect all subscribers at once (the paper's test delays
    # reconnection exactly this way).
    sim.run_until(recover_time)
    ld_at_recover = shb.latest_delivered(pubend)
    slope_window_start: Optional[float] = None
    slope_samples: List[Tuple[float, int]] = []
    while sim.now < total_ms:
        sim.run_until(sim.now + 500.0)
        slope_samples.append((sim.now, shb.latest_delivered(pubend)))
        if shb.latest_delivered(pubend) >= int(sim.now) - 2_000:
            break
    constream_caught_up = sim.now
    disconnected_ms = [sim.now - disconnect_time] * len(subscribers)
    for sub in subscribers:
        if not sub.connected:
            sub.connect(shb)

    sim.run_until(total_ms)
    for pub in publishers:
        pub.stop()
    sim.run_until(total_ms + 5_000.0)
    collector.stop()

    # Slopes: normal (before crash) vs constream recovery window.
    normal_slope = ld_before / crash_at_ms * 1000.0
    rec_elapsed = max(1.0, constream_caught_up - recover_time)
    ld_caught_up = slope_samples[-1][1] if slope_samples else shb.latest_delivered(pubend)
    recovery_slope = (ld_caught_up - ld_at_recover) / rec_elapsed * 1000.0
    reads = shb.pfs.reads or 1
    ok = all(s.stats.order_violations == 0 and s.stats.gaps == 0 for s in subscribers)
    return FailureResult(
        latest_delivered=collector.get("latestDelivered"),
        released=collector.get("released"),
        machine_rates=[collector.get(f"machine{i + 1}_rate") for i in range(len(machines))],
        phb_idle=collector.get("phb_idle"),
        shb_idle=collector.get("shb_idle"),
        catchup_durations_ms=[d for _t, d in shb.catchup_durations_ms],
        disconnected_ms=disconnected_ms,
        normal_slope=normal_slope,
        recovery_slope=float(recovery_slope),
        pfs_reads_reaching_last_fraction=shb.pfs.reads_reaching_last / reads,
        exactly_once_ok=ok,
    )


# ---------------------------------------------------------------------------
# JMS auto-acknowledge (Section 5.2)
# ---------------------------------------------------------------------------
@dataclass
class JMSResult:
    subscribers: int
    offered_rate: float
    consumed_rate: float          # committed consumption throughput
    commits_per_s: float
    coalesced_fraction: float


def run_jms_autoack(
    n_subs: int,
    input_rate: float,
    duration_ms: float = 20_000.0,
    warmup_ms: float = 4_000.0,
    n_connections: int = 4,
    spec: Optional[PaperWorkloadSpec] = None,
) -> JMSResult:
    """Peak auto-acknowledge throughput at one SHB.

    The offered rate is set above the expected commit capacity so the
    measured consumption rate is the CT-commit bottleneck, as in the
    paper (where it was "the update and commit throughput of the
    database").
    """
    spec = spec or PaperWorkloadSpec(input_rate=input_rate)
    sim = Scheduler()
    overlay = build_two_broker(sim, spec.pubend_names())
    shb = overlay.shbs[0]
    service = CheckpointCommitService(shb, n_connections=n_connections)
    publishers = make_publishers(sim, overlay.phb, spec)
    subscribers: List[JMSDurableSubscriber] = []
    machines: List[Node] = []
    for i in range(n_subs):
        m_idx = i // 8
        while m_idx >= len(machines):
            machines.append(Node(sim, f"jms-client-m{len(machines) + 1}"))
        sub = JMSDurableSubscriber(
            sim, f"jms-s{i + 1}", machines[m_idx], spec.subscriber_predicate(i),
            ack_mode=AUTO_ACKNOWLEDGE,
        )
        sub.connect(shb)
        subscribers.append(sub)
    sim.run_until(warmup_ms)
    consumed_0 = sum(s.events_consumed for s in subscribers)
    commits_0 = service.commits
    t0 = sim.now
    sim.run_until(warmup_ms + duration_ms)
    elapsed = sim.now - t0
    consumed_rate = (sum(s.events_consumed for s in subscribers) - consumed_0) * 1000.0 / elapsed
    commits_rate = (service.commits - commits_0) * 1000.0 / elapsed
    for pub in publishers:
        pub.stop()
    total_updates = service.updates_committed + service.updates_coalesced
    return JMSResult(
        subscribers=n_subs,
        offered_rate=spec.per_subscriber_rate * n_subs,
        consumed_rate=consumed_rate,
        commits_per_s=commits_rate,
        coalesced_fraction=service.updates_coalesced / total_updates if total_updates else 0.0,
    )


# ---------------------------------------------------------------------------
# Chaos soak (robustness harness; not a paper figure)
# ---------------------------------------------------------------------------
@dataclass
class ChaosSoakResult:
    """Outcome of one seeded chaos run.

    ``violations`` is the verdict: empty means every invariant held.
    Each entry is a human-readable sentence naming the subscriber (or
    watchdog) and what went wrong, so a failing seed is directly a bug
    report.  Everything else is context for debugging that seed.
    """

    seed: int
    duration_ms: float
    fault_horizon_ms: float
    converged_at_ms: Optional[float]
    events_published: int
    events_delivered: int
    duplicates: int
    order_violations: int
    gaps: int
    faults: List[object]                  # FaultRecords, in injection order
    violations: List[str]
    link_faults: Dict[str, object] = field(default_factory=dict)
    curiosity: Dict[str, int] = field(default_factory=dict)
    disk: Dict[str, int] = field(default_factory=dict)
    longest_stall_ms: float = 0.0
    stalled_subscribers: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_chaos_soak(
    seed: int,
    duration_ms: float = 30_000.0,
    fanout: Optional[List[int]] = None,
    subs_per_shb: int = 2,
    batch_window_ms: float = 0.0,
    spec: Optional[PaperWorkloadSpec] = None,
    crashes: int = 3,
    partitions: int = 3,
    loss_bursts: int = 4,
    stalls: int = 2,
    client_crashes: int = 2,
    max_down_ms: float = 1_500.0,
    grace_ms: float = 30_000.0,
) -> ChaosSoakResult:
    """Seeded chaos soak: random faults, then prove the guarantees held.

    Builds a PHB → intermediate → SHB tree, runs the paper workload,
    and lets a :class:`~repro.sim.failures.ChaosSchedule` crash brokers,
    partition links, inject loss/duplication/reordering/corruption
    bursts, stall CPUs and crash client machines inside the first 60%
    of the run.  Publishing stops at 80%, and the run then converges
    through a quiet tail (extended up to ``grace_ms`` if needed).

    Invariants checked, per durable subscriber:

    * exactly-once per ``(pubend, tick)`` — no duplicate event ids, no
      order violations;
    * completeness — the received event set equals the predicate-
      matching subset of everything the PHB logged durably (events lost
      to a PHB crash before their sync completed never became durable,
      were never acknowledged, and so are legitimately absent);
    * gap honesty — no early-release policy is configured and no
      ReleaseUpdate is injected, so any GapMessage is a violation;
    * liveness — per-SHB :class:`~repro.sim.failures.ProgressWatchdog`
      probes must advance during the post-fault quiet tail, and the run
      must converge before the grace deadline.
    """
    from ..client.publisher import PeriodicPublisher  # noqa: F401  (re-export convenience)
    from ..net.link import link_stats
    from .failures import ChaosSchedule, PerSubscriberWatchdog, ProgressWatchdog

    fault_horizon = duration_ms * 0.6
    quiet_start = fault_horizon + max_down_ms + 2_500.0
    if quiet_start + 1_000.0 > duration_ms:
        raise ValueError(
            f"duration_ms={duration_ms:.0f} leaves no quiet tail: faults can "
            f"linger until ~{quiet_start:.0f} ms; use a longer run"
        )
    spec = spec or PaperWorkloadSpec(input_rate=200.0, n_pubends=2)
    pubends = spec.pubend_names()
    sim = Scheduler()
    overlay = build_tree(
        sim, pubends, fanout or [2, 2],
        batch_window_ms=batch_window_ms,
        nack_backoff_factor=2.0,
        nack_backoff_max_ms=4_000.0,
        nack_jitter_ms=20.0,
        nack_retry_budget=64,
    )
    publishers = make_publishers(sim, overlay.phb, spec)

    subscribers: List[DurableSubscriber] = []
    machines: List[Node] = []
    home: Dict[str, object] = {}
    for s_idx, shb in enumerate(overlay.shbs):
        for j in range(subs_per_shb):
            i = s_idx * subs_per_shb + j
            machine = Node(sim, f"chaos-m{i + 1}")
            machines.append(machine)
            sub = DurableSubscriber(
                sim, f"cs{i + 1}", machine, spec.subscriber_predicate(i),
                record_events=True, connect_retry_ms=400.0,
            )
            sub.connect(shb)
            subscribers.append(sub)
            home[sub.sub_id] = shb
            # A machine crash kills the app process: its CT rolls back
            # to the committed snapshot, like DurableSubscriber.crash().
            machine.on_crash(lambda s=sub: setattr(s, "ct", s.committed_ct.copy()))

    # Reconnect supervisor: any subscriber dropped by an SHB crash or
    # client-machine crash reconnects once both ends are up again (the
    # connect-retry knob covers the race where the SHB dies in between).
    def _supervise() -> None:
        for sub in subscribers:
            if not sub.connected and not sub.node.is_down:
                shb = home[sub.sub_id]
                if not shb.node.is_down:
                    sub.connect(shb)

    supervisor = sim.every(331.0, _supervise)

    # Ground truth recorder: the durable log is the oracle for
    # completeness, but release chops it from the front, so snapshot
    # event ids/attributes well before any chop can land (a tick is
    # released only after every subscriber acked it, ≥ one 250 ms ack
    # interval after delivery — a 100 ms scan never misses).
    truth: Dict[str, Dict[str, Mapping[str, object]]] = {p: {} for p in pubends}

    def _record_truth() -> None:
        for p in pubends:
            for ev in overlay.phb.pubends[p].log.read_range(0, 2**60):
                truth[p].setdefault(ev.event_id, ev.attributes)

    truth_timer = sim.every(100.0, _record_truth)

    watchdogs = [
        ProgressWatchdog(
            sim,
            lambda s=shb: float(sum(s.latest_delivered(p) for p in pubends)),
            interval_ms=250.0,
            name=shb.name,
        )
        for shb in overlay.shbs
    ]
    # Per-subscriber progress: an aggregate probe hides one wedged
    # subscriber behind everyone else's advance.
    sub_watchdog = PerSubscriberWatchdog(
        sim,
        {s.sub_id: (lambda s=s: float(s.stats.events)) for s in subscribers},
        interval_ms=250.0,
    )

    chaos = ChaosSchedule(
        sim, seed,
        brokers=overlay.all_brokers(),
        links=list(overlay.links),
        client_nodes=machines,
    )
    chaos.generate(
        fault_horizon,
        crashes=crashes, partitions=partitions, loss_bursts=loss_bursts,
        stalls=stalls, client_crashes=client_crashes, max_down_ms=max_down_ms,
    )

    publish_until = duration_ms * 0.8
    sim.run_until(publish_until)
    for pub in publishers:
        pub.stop()
    sim.run_until(duration_ms)

    def _expected(sub: DurableSubscriber) -> Set[str]:
        return {
            eid
            for p in pubends
            for eid, attrs in truth[p].items()
            if sub.predicate.matches(attrs)
        }

    # Quiet-tail convergence: extend past duration_ms (up to grace_ms)
    # until everyone is reconnected and has every matching durable event.
    deadline = duration_ms + grace_ms
    converged_at: Optional[float] = None
    while True:
        if all(s.connected for s in subscribers) and all(
            _expected(s) <= s.received_event_id_set for s in subscribers
        ):
            converged_at = sim.now
            break
        if sim.now >= deadline:
            break
        sim.run_until(min(sim.now + 500.0, deadline))

    chaos.stop()
    supervisor.cancel()
    truth_timer.cancel()
    for wd in watchdogs:
        wd.stop()
    sub_watchdog.stop()

    violations: List[str] = []
    for sub in subscribers:
        if sub.duplicate_events:
            violations.append(f"{sub.sub_id}: {sub.duplicate_events} duplicate events")
        if sub.stats.order_violations:
            violations.append(
                f"{sub.sub_id}: {sub.stats.order_violations} order violations"
            )
        if sub.stats.gaps:
            violations.append(
                f"{sub.sub_id}: {sub.stats.gaps} gap messages with no release injected"
                f" (ranges {sub.stats.gap_ranges[:3]})"
            )
        expected = _expected(sub)
        missing = expected - sub.received_event_id_set
        extra = sub.received_event_id_set - expected
        if missing:
            violations.append(
                f"{sub.sub_id}: missing {len(missing)} durable matching events"
                f" (e.g. {sorted(missing)[:3]})"
            )
        if extra:
            violations.append(
                f"{sub.sub_id}: received {len(extra)} events not in the durable log"
                f" (e.g. {sorted(extra)[:3]})"
            )
    if converged_at is None:
        violations.append(
            f"no convergence within {grace_ms:.0f} ms grace after the run"
        )
    for wd in watchdogs:
        if not wd.progressed_between(quiet_start, duration_ms):
            violations.append(
                f"watchdog {wd.name}: no forward progress in the quiet tail"
                f" [{quiet_start:.0f}, {duration_ms:.0f}] ms"
            )
    # "Behind" is judged against each subscriber's *own* expected set —
    # predicates differ, so raw event counts are not comparable across
    # subscribers.
    behind = {
        sub.sub_id
        for sub in subscribers
        if _expected(sub) - sub.received_event_id_set
    }
    stalled = sub_watchdog.stalled_subscribers(quiet_start, duration_ms, behind=behind)
    for name in stalled:
        violations.append(
            f"subscriber {name}: no forward progress in the quiet tail"
            f" [{quiet_start:.0f}, {duration_ms:.0f}] ms and still missing events"
        )

    curiosity_counters = {"nacks_sent": 0, "renacks": 0, "budget_suppressed": 0}
    for shb in overlay.shbs:
        for cur in shb.head_curiosity.values():
            curiosity_counters["nacks_sent"] += cur.nacks_sent
            curiosity_counters["renacks"] += cur.renacks
            curiosity_counters["budget_suppressed"] += cur.budget_suppressed
    disks = [overlay.phb.disk] + [s.disk for s in overlay.shbs if getattr(s, "disk", None)]
    disk_counters = {
        "crashes": sum(d.crashes for d in disks),
        "writes_lost_in_crash": sum(d.writes_lost_in_crash for d in disks),
    }
    return ChaosSoakResult(
        seed=seed,
        duration_ms=duration_ms,
        fault_horizon_ms=fault_horizon,
        converged_at_ms=converged_at,
        events_published=sum(p.published for p in publishers),
        events_delivered=sum(s.stats.events for s in subscribers),
        duplicates=sum(s.duplicate_events for s in subscribers),
        order_violations=sum(s.stats.order_violations for s in subscribers),
        gaps=sum(s.stats.gaps for s in subscribers),
        faults=list(chaos.records),
        violations=violations,
        link_faults=link_stats(sim).snapshot(),
        curiosity=curiosity_counters,
        disk=disk_counters,
        longest_stall_ms=max((wd.longest_stall_ms for wd in watchdogs), default=0.0),
        stalled_subscribers=stalled,
    )


# ---------------------------------------------------------------------------
# Migration soak (dynamic-topology robustness harness; not a paper figure)
# ---------------------------------------------------------------------------
@dataclass
class MigrationSoakResult:
    """Outcome of one seeded dynamic-topology soak.

    ``violations`` is the verdict — empty means every oracle family
    (exactly-once, completeness, gap honesty, PFS chain integrity,
    chop agreement, knowledge monotonicity) held across the join, the
    mid-catchup migration and the drain.  The rest is context: what
    moved where, which faults fired inside the handoff windows, and
    when the run converged.
    """

    seed: int
    duration_ms: float
    converged_at_ms: Optional[float]
    events_published: int
    events_delivered: int
    joined_shb: str
    drained_shb: str
    migrated_mid_catchup: str
    migrations: int
    migrations_done: int
    source_detached: bool
    faults: List[object]
    violations: List[str]
    stalled_subscribers: List[str] = field(default_factory=list)
    final_placement: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_migration_soak(
    seed: int,
    duration_ms: float = 24_000.0,
    n_shbs: int = 2,
    subs_per_shb: int = 2,
    spec: Optional[PaperWorkloadSpec] = None,
    with_faults: bool = True,
    grace_ms: float = 30_000.0,
) -> MigrationSoakResult:
    """Seeded dynamic-topology soak: join, migrate mid-catchup, drain.

    The scripted sequence over a PHB → ``n_shbs`` SHB star:

    1. one durable subscriber (the *victim*) naps at 15% of the run so
       a backlog accumulates, and reconnects at 40% — entering catchup;
    2. a fresh SHB joins the running overlay at 25%
       (:meth:`~repro.sim.supervisor.Supervisor.join_shb`);
    3. at 42% the victim — still catching up — is migrated from its
       home SHB to the newcomer while the ``"during-migration"`` fault
       phase crashes/lossifies the source, the destination and their
       uplinks inside the handoff window;
    4. at 58% the source SHB is drained into the newcomer (remaining
       subscriptions migrate, the broker detaches) under a
       ``"during-drain"`` loss phase;
    5. publishing stops at 80% and the run converges through a quiet
       tail (extended up to ``grace_ms``).

    Refused clients follow the ``ConnectRefused`` redirect to the
    subscription's new home; every oracle family from
    :mod:`repro.sim.oracles` is checked at the end (the retired source
    included), plus per-subscriber progress watchdogs.
    """
    from .failures import ChaosSchedule, PerSubscriberWatchdog
    from .oracles import KnowledgeMonotonicityProbe, check_all
    from .supervisor import Supervisor

    spec = spec or PaperWorkloadSpec(input_rate=200.0, n_pubends=2)
    pubends = spec.pubend_names()
    sim = Scheduler()
    overlay = build_star(
        sim, pubends, n_shbs,
        nack_backoff_factor=2.0,
        nack_backoff_max_ms=4_000.0,
        nack_jitter_ms=20.0,
        nack_retry_budget=64,
    )
    source = overlay.shbs[0]
    publishers = make_publishers(sim, overlay.phb, spec)

    subscribers: List[DurableSubscriber] = []
    home: Dict[str, object] = {}
    napping: Set[str] = set()
    for s_idx, shb in enumerate(overlay.shbs):
        for j in range(subs_per_shb):
            i = s_idx * subs_per_shb + j
            sub = DurableSubscriber(
                sim, f"ms{i + 1}", Node(sim, f"mig-m{i + 1}"),
                spec.subscriber_predicate(i),
                record_events=True, connect_retry_ms=400.0,
            )
            sub.connect(shb)
            subscribers.append(sub)
            home[sub.sub_id] = shb
    victim = subscribers[0]  # hosted by ``source``

    # Redirect-aware reconnect supervision: a subscriber dropped by a
    # crash reconnects to its recorded home; one refused with a
    # redirect (migrated away, or its home drained) re-homes first.
    def _shb_named(name: str) -> Optional[object]:
        for shb in overlay.shbs:
            if shb.name == name:
                return shb
        return None

    def _supervise() -> None:
        for sub in subscribers:
            if sub.connected or sub.node.is_down or sub.sub_id in napping:
                continue
            if sub.last_refusal is not None:
                _reason, redirect = sub.last_refusal
                sub.last_refusal = None
                if redirect is not None:
                    target = _shb_named(redirect)
                    if target is not None:
                        home[sub.sub_id] = target
            shb = home[sub.sub_id]
            if not shb.node.is_down:
                sub.connect(shb)

    supervise_timer = sim.every(331.0, _supervise)

    truth: Dict[str, Dict[str, Tuple[int, Mapping[str, object]]]] = {
        p: {} for p in pubends
    }

    def _record_truth() -> None:
        for p in pubends:
            for ev in overlay.phb.pubends[p].log.read_range(0, 2**60):
                truth[p].setdefault(ev.event_id, (ev.timestamp, ev.attributes))

    truth_timer = sim.every(100.0, _record_truth)

    sub_watchdog = PerSubscriberWatchdog(
        sim,
        {s.sub_id: (lambda s=s: float(s.stats.events)) for s in subscribers},
        interval_ms=250.0,
    )
    probes = [
        KnowledgeMonotonicityProbe(sim, shb, pubends, interval_ms=250.0)
        for shb in overlay.shbs
    ]

    chaos = ChaosSchedule(
        sim, seed, brokers=overlay.all_brokers(), links=list(overlay.links)
    )
    supervisor = Supervisor(overlay)
    joined: Dict[str, object] = {}
    drained: Dict[str, object] = {}

    t_nap = duration_ms * 0.15
    t_join = duration_ms * 0.25
    t_wake = duration_ms * 0.40
    # Close enough to the wake-up that the victim's catchup (a backlog
    # of a quarter of the run) is still streaming when the handoff
    # starts — the acceptance scenario is "migrate mid-catchup".
    t_migrate = t_wake + 120.0
    t_drain = duration_ms * 0.58
    publish_until = duration_ms * 0.8

    def _nap() -> None:
        napping.add(victim.sub_id)
        victim.disconnect()

    def _join() -> None:
        joiner = supervisor.join_shb(
            "shb-joiner",
            nack_backoff_factor=2.0,
            nack_backoff_max_ms=4_000.0,
            nack_jitter_ms=20.0,
            nack_retry_budget=64,
        )
        joined["shb"] = joiner
        probes.append(
            KnowledgeMonotonicityProbe(sim, joiner, pubends, interval_ms=250.0)
        )
        if with_faults:
            uplinks = [
                overlay.link_between(overlay.phb, source),
                overlay.link_between(overlay.phb, joiner),
            ]
            chaos.plan_phase(
                "during-migration", crashes=1, loss_bursts=2,
                window_ms=900.0, max_down_ms=450.0,
                brokers=[source, joiner], links=uplinks,
            )
            chaos.plan_phase(
                "during-drain", loss_bursts=2,
                window_ms=1_200.0, max_down_ms=450.0, links=uplinks,
            )

    def _wake() -> None:
        napping.discard(victim.sub_id)
        if not victim.connected and not victim.node.is_down:
            shb = home[victim.sub_id]
            if not shb.node.is_down:
                victim.connect(shb)

    def _migrate() -> None:
        chaos.mark_phase("during-migration")
        supervisor.migrate(victim.sub_id, source, joined["shb"])

    def _drain() -> None:
        chaos.mark_phase("during-drain")
        drained["handle"] = supervisor.drain_shb(source, joined["shb"])

    sim.at(t_nap, _nap)
    sim.at(t_join, _join)
    sim.at(t_wake, _wake)
    sim.at(t_migrate, _migrate)
    sim.at(t_drain, _drain)

    sim.run_until(publish_until)
    for pub in publishers:
        pub.stop()
    sim.run_until(duration_ms)

    def _expected(sub: DurableSubscriber) -> Dict[str, int]:
        return {
            eid: ts
            for p in pubends
            for eid, (ts, attrs) in truth[p].items()
            if sub.predicate.matches(attrs)
        }

    def _settled() -> bool:
        handle = drained.get("handle")
        if handle is None or not handle.detached:
            return False
        if any(not m.done for m in supervisor.migrations):
            return False
        return all(s.connected for s in subscribers) and all(
            set(_expected(s)) <= s.received_event_id_set for s in subscribers
        )

    deadline = duration_ms + grace_ms
    converged_at: Optional[float] = None
    while True:
        if _settled():
            converged_at = sim.now
            break
        if sim.now >= deadline:
            break
        sim.run_until(min(sim.now + 500.0, deadline))

    chaos.stop()
    supervise_timer.cancel()
    truth_timer.cancel()
    sub_watchdog.stop()
    _record_truth()

    truth_ids = {eid for p in pubends for eid in truth[p]}
    violations = check_all(
        overlay=overlay,
        subscribers=subscribers,
        expected_of=_expected,
        knowledge_probe=probes,
        truth_ids=truth_ids,
    )
    handle = drained.get("handle")
    if handle is None or not handle.detached:
        violations.append(f"{source.name}: drain never detached the broker")
    if any(not m.done for m in supervisor.migrations):
        undone = [m.handoff_id for m in supervisor.migrations if not m.done]
        violations.append(f"unfinished migrations: {undone}")
    if converged_at is None:
        violations.append(
            f"no convergence within {grace_ms:.0f} ms grace after the run"
        )
    behind = {
        sub.sub_id
        for sub in subscribers
        if set(_expected(sub)) - sub.received_event_id_set
    }
    stalled = sub_watchdog.stalled_subscribers(t_drain, publish_until, behind=behind)
    for name in stalled:
        violations.append(
            f"subscriber {name}: no forward progress in"
            f" [{t_drain:.0f}, {publish_until:.0f}] ms and still missing events"
        )

    return MigrationSoakResult(
        seed=seed,
        duration_ms=duration_ms,
        converged_at_ms=converged_at,
        events_published=sum(p.published for p in publishers),
        events_delivered=sum(s.stats.events for s in subscribers),
        joined_shb="shb-joiner",
        drained_shb=source.name,
        migrated_mid_catchup=victim.sub_id,
        migrations=len(supervisor.migrations),
        migrations_done=sum(1 for m in supervisor.migrations if m.done),
        source_detached=bool(handle is not None and handle.detached),
        faults=list(chaos.records),
        violations=violations,
        stalled_subscribers=stalled,
        final_placement=supervisor.placement(),
    )


# ---------------------------------------------------------------------------
# Message amplification (batching / coalescing report)
# ---------------------------------------------------------------------------
@dataclass
class AmplificationResult:
    batch_window_ms: float
    subscribers: int
    events_published: int
    events_delivered: int
    link_messages: int           # logical messages handed to links
    link_transmissions: int      # scheduled deliveries (batches count once)
    mean_batch_size: float
    messages_per_event: float    # transmissions per published event
    batch_size_series: Series
    msgs_per_event_series: Series
    duplicates: int
    order_violations: int

    @property
    def exactly_once_ok(self) -> bool:
        return self.duplicates == 0 and self.order_violations == 0


def run_message_amplification(
    batch_window_ms: float,
    n_subs: int = 16,
    duration_ms: float = 12_000.0,
    spec: Optional[PaperWorkloadSpec] = None,
) -> AmplificationResult:
    """Link-message amplification at the paper's full input rate.

    Worst case for fan-out amplification: every subscriber matches every
    event (``groups_per_sub == n_groups``), so without batching each of
    the 800 ev/s crosses the SHB→client hop once per subscriber.  The
    result reports how many link transmissions each published event
    costs; a batching window collapses that by roughly
    ``per-link message rate × window``.
    """
    spec = spec or PaperWorkloadSpec(groups_per_sub=4)
    sim = Scheduler()
    overlay = build_two_broker(
        sim, spec.pubend_names(), batch_window_ms=batch_window_ms
    )
    publishers = make_publishers(sim, overlay.phb, spec)
    subscribers = make_subscribers(
        sim, overlay.shbs, spec, n_subs, record_events=True
    )
    collector = MetricsCollector(sim, interval_ms=1000.0)
    collector.link_batching(
        sim, lambda: float(sum(p.published for p in publishers))
    )
    collector.start()
    sim.run_until(duration_ms)
    for pub in publishers:
        pub.stop()
    sim.run_until(duration_ms + 2_000.0)   # drain in-flight batches
    collector.stop()
    from ..net.link import link_stats

    stats = link_stats(sim)
    published = sum(p.published for p in publishers)
    return AmplificationResult(
        batch_window_ms=batch_window_ms,
        subscribers=n_subs,
        events_published=published,
        events_delivered=sum(s.stats.events for s in subscribers),
        link_messages=stats.messages,
        link_transmissions=stats.transmissions,
        mean_batch_size=stats.mean_batch_size,
        messages_per_event=stats.transmissions / published if published else 0.0,
        batch_size_series=collector.get("link.batch_size"),
        msgs_per_event_series=collector.get("link.msgs_per_event"),
        duplicates=sum(s.duplicate_events for s in subscribers),
        order_violations=sum(s.stats.order_violations for s in subscribers),
    )
