"""Deterministic crash-point exploration of the storage stack.

PR 2's chaos soak samples crashes at *random* times, so a crash that
lands exactly between "record appended" and "durable callback fired"
is only hit by luck.  This module instead enumerates every durability
boundary the storage stack crosses during a scripted scenario and
replays the scenario once per boundary, crashing the broker that owns
the storage *at* that boundary — ALICE/CrashMonkey-style systematic
exploration.

Mechanics
---------

* Storage modules (``storage/disk.py``, ``storage/table.py``,
  ``storage/logvolume.py``, ``storage/eventlog.py``, ``pfs/pfs.py``)
  call ``HOOKS.fire(site, owner)`` at each durability boundary, e.g.
  just before and just after a ``PersistentTable`` batch lands in the
  committed view.  ``HOOKS`` is the module-global below; with no
  listener installed (the default) ``fire`` is never even called —
  call sites guard with ``if HOOKS.enabled:`` — so the instrumented
  code is byte-identical in behavior to the uninstrumented code
  (pinned by the determinism digest fixtures).

* A **census** run installs a recording listener and replays the
  scripted scenario once, yielding the ordered list of crash points:
  firing ``seq`` (ordinal), ``site`` (e.g. ``pfs.durable.pre``) and
  ``owner`` (the broker whose storage fired).  Sites are free-form —
  when the PFS hot path moved from per-record appends
  (``pfs.write.pre``) to columnar batches (``pfs.write_batch.pre``,
  one firing per pump advance), the census discovered the new
  boundaries without any change here.

* An **injection** run installs a listener armed with one target
  ``seq``.  The simulation prefix is deterministic, so the target
  firing happens at exactly the census-observed boundary; the listener
  raises :class:`SimulatedCrash`, which unwinds out of
  ``Scheduler.run_until`` mid-event — precisely the torn state a real
  crash leaves.  The explorer then crash-stops the owning broker
  (voiding staged writes, exactly like the chaos soak), schedules
  recovery, finishes the script, waits for convergence, and runs the
  oracle suite from :mod:`repro.sim.oracles`.

Run it from the command line::

    PYTHONPATH=src python -m repro.sim.crashpoints --max-points 120 \
        --out explorer_summary.json

The module level is import-light (stdlib only) so storage modules can
import ``HOOKS`` without cycles; the scenario machinery imports the
rest of the package lazily.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "HOOKS",
    "CrashPoint",
    "CrashPointHooks",
    "SimulatedCrash",
    "CrashOutcome",
    "ExplorationSummary",
    "census",
    "explore",
    "select_points",
]


# ----------------------------------------------------------------------
# Hook primitive (imported by the storage modules)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashPoint:
    """One numbered durability-boundary firing in the scripted run."""

    seq: int                 # firing ordinal within the run (0-based)
    site: str                # boundary name, e.g. "disk.sync.callback"
    owner: Optional[str]     # name of the broker owning the storage

    def label(self) -> str:
        return f"#{self.seq} {self.site}@{self.owner}"


class SimulatedCrash(Exception):
    """Raised by an armed hook listener to tear the simulation mid-event.

    Deliberately *not* a subclass of any repro error type: nothing in
    ``src/`` catches broad exceptions, so the unwind reaches the
    explorer's ``run_until`` call with all intermediate state torn —
    the same cut a power failure would make.
    """

    def __init__(self, point: CrashPoint) -> None:
        super().__init__(point.label())
        self.point = point


class CrashPointHooks:
    """Process-global crash-point hook registry.

    ``enabled`` is False unless a listener is installed; call sites
    guard with ``if HOOKS.enabled:`` so the disabled cost is one
    attribute check and the simulation's event/RNG stream is untouched.
    """

    __slots__ = ("enabled", "_listener")

    def __init__(self) -> None:
        self.enabled = False
        self._listener: Optional[Callable[[str, Optional[str]], None]] = None

    def install(self, listener: Callable[[str, Optional[str]], None]) -> None:
        if self._listener is not None:
            raise RuntimeError("a crash-point listener is already installed")
        self._listener = listener
        self.enabled = True

    def uninstall(self) -> None:
        self._listener = None
        self.enabled = False

    def fire(self, site: str, owner: Optional[str]) -> None:
        listener = self._listener
        if listener is not None:
            listener(site, owner)


#: The registry every instrumented storage module reports to.
HOOKS = CrashPointHooks()


class _CensusListener:
    """Records every firing, in order."""

    def __init__(self) -> None:
        self.points: List[CrashPoint] = []

    def __call__(self, site: str, owner: Optional[str]) -> None:
        self.points.append(CrashPoint(len(self.points), site, owner))


class _InjectListener:
    """Counts firings and raises at the target ordinal, exactly once."""

    def __init__(self, target_seq: int) -> None:
        self.target_seq = target_seq
        self.seq = 0
        self.fired: Optional[CrashPoint] = None

    def __call__(self, site: str, owner: Optional[str]) -> None:
        seq = self.seq
        self.seq += 1
        if seq == self.target_seq and self.fired is None:
            self.fired = CrashPoint(seq, site, owner)
            raise SimulatedCrash(self.fired)


# ----------------------------------------------------------------------
# The scripted scenario
# ----------------------------------------------------------------------
#: Publisher stops here; the script keeps running so releases and chops
#: still happen over the full log.
PUBLISH_UNTIL_MS = 2_400.0
#: End of the scripted portion (census enumerates boundaries up to here).
SCRIPT_END_MS = 3_600.0


@dataclass
class _Scenario:
    sim: object
    overlay: object
    subscribers: List[object]
    publisher: object
    truth: Dict[str, Tuple[int, Dict[str, object]]]   # eid -> (tick, attrs)
    schedule: object
    knowledge_probe: object                           # one probe or a list
    record_truth: Callable[[], None]
    publish_until_ms: float = PUBLISH_UNTIL_MS
    script_end_ms: float = SCRIPT_END_MS
    #: Extra scenario-specific convergence condition (e.g. "the drain
    #: detached and every migration finished").
    settled_extra: Optional[Callable[[], bool]] = None

    def broker_of(self, owner: Optional[str]) -> Optional[object]:
        brokers = list(self.overlay.all_brokers())
        brokers.extend(getattr(self.overlay, "retired", []))
        for broker in brokers:
            if broker.name == owner:
                return broker
        return None

    def expected(self, sub) -> Dict[str, int]:
        """event_id -> tick of every durably logged event matching sub."""
        out: Dict[str, int] = {}
        for eid, (tick, attrs) in self.truth.items():
            if sub.predicate.matches(attrs):
                out[eid] = tick
        return out


def _build_scenario():
    """A compact two-broker run exercising every storage subsystem.

    Three subscribers with overlapping ``In`` predicates (so PFS records
    multiplex), a mid-run disconnect/reconnect (so catchup reads and
    release chops happen during the scripted window, not only in the
    post-crash tail), releases flowing (acks every 250 ms), a *reliable*
    publisher (go-back-N + PHB seq dedup, so PHB-side crash points at
    the event log and seq table are on the exactly-once path, not the
    fire-and-forget one), and a reconnect supervisor so injected
    crashes always heal.
    """
    from ..broker.topology import build_two_broker
    from ..client.publisher import ReliablePublisher
    from ..client.subscriber import DurableSubscriber
    from ..matching.predicates import In
    from ..net.node import Node
    from ..net.simtime import Scheduler
    from .failures import FailureSchedule
    from .oracles import KnowledgeMonotonicityProbe

    sim = Scheduler()
    overlay = build_two_broker(sim, pubends=["P1"])
    shb = overlay.shbs[0]

    subscribers = []
    for i in range(3):
        machine = Node(sim, f"xp-m{i + 1}")
        sub = DurableSubscriber(
            sim, f"xp-s{i + 1}", machine, In("group", [i % 3, (i + 1) % 3]),
            record_events=True, connect_retry_ms=400.0,
        )
        sub.connect(shb)
        subscribers.append(sub)

    publisher = ReliablePublisher(
        sim, overlay.phb, Node(sim, "xp-pub-machine"), "xp-pub", "P1",
        retransmit_ms=400.0,
    )

    def feed(count=[0]) -> None:  # noqa: B006 - deliberate mutable default
        if sim.now < PUBLISH_UNTIL_MS:
            publisher.publish({"group": count[0] % 3})
            count[0] += 1

    sim.every(1000.0 / 150.0, feed)

    # Scripted churn: one subscriber bounces so PFS catchup reads and
    # chop interactions are inside the enumerated window.
    sim.at(700.0, subscribers[1].disconnect)
    sim.at(1500.0, lambda: (
        subscribers[1].connect(shb) if not subscribers[1].connected else None
    ))

    # Ground truth: everything the PHB has durably logged, snapshotted
    # before releases chop it (same recorder the chaos soak uses).
    truth: Dict[str, Tuple[int, Dict[str, object]]] = {}

    def record_truth() -> None:
        log = overlay.phb.pubends["P1"].log
        for ev in log.read_range(0, 2 ** 60):
            truth.setdefault(ev.event_id, (ev.timestamp, ev.attributes))

    sim.every(50.0, record_truth)

    schedule = FailureSchedule(sim)
    probe = KnowledgeMonotonicityProbe(sim, shb, ["P1"], interval_ms=100.0)

    # Reconnect supervisor: clients that lost their link to a crashed
    # SHB come back once both ends are up.
    def supervise() -> None:
        for sub in subscribers:
            if not sub.connected and not sub.node.is_down and not shb.node.is_down:
                sub.connect(shb)

    sim.every(331.0, supervise)

    return _Scenario(
        sim=sim, overlay=overlay, subscribers=subscribers,
        publisher=publisher, truth=truth, schedule=schedule,
        knowledge_probe=probe, record_truth=record_truth,
    )


def _advance(scn: _Scenario, until: float, on_crash) -> None:
    """run_until that converts a SimulatedCrash into a broker crash."""
    while True:
        try:
            scn.sim.run_until(until)
            return
        except SimulatedCrash as exc:
            on_crash(exc.point)


def _run_script(scn: _Scenario, on_crash) -> None:
    # The feeder stops itself at the scenario's publish cutoff; the
    # remaining window lets releases, chops and retransmissions (and,
    # in the migration scenario, the drain) play out under hooks.
    _advance(scn, scn.script_end_ms, on_crash)


def _converge(scn: _Scenario, grace_ms: float, on_crash) -> Optional[float]:
    """Run past the script until every subscriber has everything.

    Returns the convergence time, or None if the grace deadline passed.
    """
    deadline = scn.script_end_ms + grace_ms

    def settled() -> bool:
        if scn.publisher.unacknowledged:
            return False
        if scn.settled_extra is not None and not scn.settled_extra():
            return False
        for sub in scn.subscribers:
            if not sub.connected:
                return False
            expected = scn.expected(sub)
            if not set(expected) <= sub.received_event_id_set:
                return False
        return True

    while True:
        if settled():
            return scn.sim.now
        if scn.sim.now >= deadline:
            return None
        _advance(scn, min(scn.sim.now + 250.0, deadline), on_crash)


#: Publish cutoff / script end for the dynamic-topology scenario.  The
#: tail is long enough for the drain's detach grace (the drained SHB
#: keeps reporting releases for ~2.5 s after its last row drops).
MIGRATION_PUBLISH_UNTIL_MS = 2_600.0
MIGRATION_SCRIPT_END_MS = 6_500.0


def _build_migration_scenario():
    """Join → mid-catchup migration → drain, under the hook census.

    Exercises every ``migrate.*`` durability boundary plus the storage
    boundaries the handoff crosses (registry, meta-table and CT commits
    on both SHBs) on a PHB → 2-SHB star that grows a third SHB
    mid-script: the victim subscriber naps, reconnects into catchup,
    migrates to the newcomer while its catchup is still streaming, and
    the source broker is then drained into the newcomer and detached.
    A redirect-aware reconnect supervisor follows the
    ``ConnectRefused`` redirects that migrated/drained clients receive.
    """
    from ..broker.topology import build_star
    from ..client.publisher import ReliablePublisher
    from ..client.subscriber import DurableSubscriber
    from ..matching.predicates import In
    from ..net.node import Node
    from ..net.simtime import Scheduler
    from .failures import FailureSchedule
    from .oracles import KnowledgeMonotonicityProbe
    from .supervisor import Supervisor

    sim = Scheduler()
    overlay = build_star(sim, ["P1"], 2)
    source, other = overlay.shbs

    subscribers = []
    homes = [source, source, other]
    for i, shb in enumerate(homes):
        machine = Node(sim, f"mgx-m{i + 1}")
        sub = DurableSubscriber(
            sim, f"mgx-s{i + 1}", machine, In("group", [i % 3, (i + 1) % 3]),
            record_events=True, connect_retry_ms=400.0,
        )
        sub.connect(shb)
        subscribers.append(sub)
    victim = subscribers[0]
    home = {sub.sub_id: shb for sub, shb in zip(subscribers, homes)}
    napping: set = set()

    publisher = ReliablePublisher(
        sim, overlay.phb, Node(sim, "mgx-pub-machine"), "mgx-pub", "P1",
        retransmit_ms=400.0,
    )

    def feed(count=[0]) -> None:  # noqa: B006 - deliberate mutable default
        if sim.now < MIGRATION_PUBLISH_UNTIL_MS:
            publisher.publish({"group": count[0] % 3})
            count[0] += 1

    sim.every(1000.0 / 150.0, feed)

    truth: Dict[str, Tuple[int, Dict[str, object]]] = {}

    def record_truth() -> None:
        log = overlay.phb.pubends["P1"].log
        for ev in log.read_range(0, 2 ** 60):
            truth.setdefault(ev.event_id, (ev.timestamp, ev.attributes))

    sim.every(50.0, record_truth)

    schedule = FailureSchedule(sim)
    probes = [
        KnowledgeMonotonicityProbe(sim, shb, ["P1"], interval_ms=100.0)
        for shb in overlay.shbs
    ]

    supervisor = Supervisor(overlay)
    joined: Dict[str, object] = {}
    drained: Dict[str, object] = {}

    def _nap() -> None:
        napping.add(victim.sub_id)
        victim.disconnect()

    def _join() -> None:
        joiner = supervisor.join_shb("mgx-joiner")
        joined["shb"] = joiner
        probes.append(
            KnowledgeMonotonicityProbe(sim, joiner, ["P1"], interval_ms=100.0)
        )

    def _wake() -> None:
        napping.discard(victim.sub_id)
        if not victim.connected and not victim.node.is_down:
            shb = home[victim.sub_id]
            if not shb.node.is_down:
                victim.connect(shb)

    def _migrate() -> None:
        supervisor.migrate(victim.sub_id, source, joined["shb"])

    def _drain() -> None:
        drained["handle"] = supervisor.drain_shb(source, joined["shb"])

    sim.at(500.0, _nap)
    sim.at(800.0, _join)
    sim.at(1_500.0, _wake)
    sim.at(1_560.0, _migrate)
    sim.at(2_700.0, _drain)

    def supervise() -> None:
        for sub in subscribers:
            if sub.connected or sub.node.is_down or sub.sub_id in napping:
                continue
            if sub.last_refusal is not None:
                _reason, redirect = sub.last_refusal
                sub.last_refusal = None
                if redirect is not None:
                    for shb in overlay.shbs:
                        if shb.name == redirect:
                            home[sub.sub_id] = shb
                            break
            shb = home[sub.sub_id]
            if not shb.node.is_down:
                sub.connect(shb)

    sim.every(331.0, supervise)

    def settled_extra() -> bool:
        handle = drained.get("handle")
        return (
            handle is not None
            and handle.detached
            and all(m.done for m in supervisor.migrations)
        )

    return _Scenario(
        sim=sim, overlay=overlay, subscribers=subscribers,
        publisher=publisher, truth=truth, schedule=schedule,
        knowledge_probe=probes, record_truth=record_truth,
        publish_until_ms=MIGRATION_PUBLISH_UNTIL_MS,
        script_end_ms=MIGRATION_SCRIPT_END_MS,
        settled_extra=settled_extra,
    )


#: Publish cutoff / script end for the generated-forest scenario.
SCALE_PUBLISH_UNTIL_MS = 2_400.0
SCALE_SCRIPT_END_MS = 4_500.0


class _ForestPublishers:
    """Several ReliablePublishers (one per tree) behind one facade."""

    def __init__(self, publishers: List[object]) -> None:
        self.publishers = list(publishers)

    @property
    def unacknowledged(self) -> int:
        return sum(p.unacknowledged for p in self.publishers)


def _build_scale_scenario():
    """A *generated* multi-PHB forest with redundant-path failover.

    The wide/deep topology generator grows two PHB-rooted trees (two
    intermediate paths each, one spare per tree) through the same
    attach APIs a live join uses; headless durable subscriptions are
    seeded across the forest and two subtrees — one bare SHB, one
    intermediate with its subtree — fail over onto spares *inside the
    scripted window*, so the census enumerates durability boundaries
    while reparenting is in flight.  Each tree publishes a disjoint
    group namespace, so a subscriber's expected set stays confined to
    the tree that can actually reach it.
    """
    from ..broker.topology import build_deep_overlay, place_durable_subscribers
    from ..client.publisher import ReliablePublisher
    from ..client.subscriber import DurableSubscriber
    from ..matching.predicates import In
    from ..net.node import Node
    from ..net.simtime import Scheduler
    from .failures import FailureSchedule
    from .oracles import KnowledgeMonotonicityProbe

    sim = Scheduler()
    federation = build_deep_overlay(
        sim, n_trees=2, pubends_per_tree=1, fanout=(2,), shbs_per_leaf=1,
        spares_per_level=1,
    )
    # Tree k publishes groups [3k, 3k+3); predicates never cross trees.
    tree_groups = [list(range(3 * k, 3 * k + 3)) for k in range(2)]
    headless_preds = [
        In("group", (g,)) for groups in tree_groups for g in groups
    ]
    place_durable_subscribers(
        federation, 6, headless_preds, seed=0, prefix="sx-h"
    )

    subscribers = []
    homes = []
    for k, tree in enumerate(federation.trees):
        for j, shb in enumerate(tree.shbs):
            i = len(subscribers)
            machine = Node(sim, f"sx-m{i + 1}")
            g = tree_groups[k]
            sub = DurableSubscriber(
                sim, f"sx-s{i + 1}", machine,
                In("group", [g[j % 3], g[(j + 1) % 3]]),
                record_events=True, connect_retry_ms=400.0,
            )
            sub.connect(shb)
            subscribers.append(sub)
            homes.append(shb)
    home = {sub.sub_id: shb for sub, shb in zip(subscribers, homes)}

    publishers = []
    for k, tree in enumerate(federation.trees):
        pub = ReliablePublisher(
            sim, tree.phb, Node(sim, f"sx-pub-m{k + 1}"), f"sx-pub{k + 1}",
            tree.pubend_names[0], retransmit_ms=400.0,
        )
        publishers.append(pub)

    def feed(count=[0]) -> None:  # noqa: B006 - deliberate mutable default
        if sim.now < SCALE_PUBLISH_UNTIL_MS:
            for k, pub in enumerate(publishers):
                pub.publish({"group": tree_groups[k][count[0] % 3]})
            count[0] += 1

    sim.every(1000.0 / 150.0, feed)

    truth: Dict[str, Tuple[int, Dict[str, object]]] = {}

    def record_truth() -> None:
        for tree in federation.trees:
            for pubend in tree.phb.pubends.values():
                for ev in pubend.log.read_range(0, 2 ** 60):
                    truth.setdefault(ev.event_id, (ev.timestamp, ev.attributes))

    sim.every(50.0, record_truth)

    schedule = FailureSchedule(sim)
    probes = []
    for tree in federation.trees:
        for shb in tree.shbs:
            probes.append(
                KnowledgeMonotonicityProbe(
                    sim, shb, tree.pubend_names, interval_ms=100.0
                )
            )

    # Scripted churn + two redundant-path failovers inside the window:
    # a bare SHB hops onto tree 1's spare, then a whole intermediate
    # subtree (intermediate + its SHB) hops onto tree 2's spare.
    sim.at(700.0, subscribers[1].disconnect)
    sim.at(1_500.0, lambda: (
        subscribers[1].connect(home[subscribers[1].sub_id])
        if not subscribers[1].connected else None
    ))
    sim.at(1_200.0, lambda: federation.fail_over(
        federation.trees[0].shbs[0], federation.spares[(0, 1)][0]
    ))
    sim.at(1_800.0, lambda: federation.fail_over(
        federation.trees[1].intermediates[0], federation.spares[(1, 1)][0]
    ))

    def supervise() -> None:
        for sub in subscribers:
            shb = home[sub.sub_id]
            if not sub.connected and not sub.node.is_down and not shb.node.is_down:
                sub.connect(shb)

    sim.every(331.0, supervise)

    return _Scenario(
        sim=sim, overlay=federation, subscribers=subscribers,
        publisher=_ForestPublishers(publishers), truth=truth,
        schedule=schedule, knowledge_probe=probes,
        record_truth=record_truth,
        publish_until_ms=SCALE_PUBLISH_UNTIL_MS,
        script_end_ms=SCALE_SCRIPT_END_MS,
    )


#: Scenario registry: name -> builder.  ``storage`` is the original
#: two-broker script over the storage stack; ``migration`` adds the
#: dynamic-topology handoff windows (``migrate.*`` hook sites);
#: ``scale`` sweeps a *generated* multi-PHB forest while subtrees fail
#: over onto redundant-path spares.
SCENARIOS: Dict[str, Callable[[], _Scenario]] = {
    "storage": _build_scenario,
    "migration": _build_migration_scenario,
    "scale": _build_scale_scenario,
}


# ----------------------------------------------------------------------
# Census, selection, exploration
# ----------------------------------------------------------------------
def census(scenario: str = "storage") -> List[CrashPoint]:
    """Enumerate every boundary firing in the scripted scenario."""
    listener = _CensusListener()
    scn = SCENARIOS[scenario]()
    HOOKS.install(listener)
    try:
        _run_script(scn, on_crash=lambda point: None)
    finally:
        HOOKS.uninstall()
    return listener.points


def select_points(
    points: List[CrashPoint], max_points: Optional[int]
) -> List[CrashPoint]:
    """Deterministic stratified subset: cover every distinct
    (site, owner) boundary kind first, then fill the budget with an
    even stride over the remaining firings so the whole timeline is
    sampled, not just the warm-up."""
    if max_points is None or max_points >= len(points):
        return list(points)
    groups: Dict[Tuple[str, Optional[str]], List[CrashPoint]] = {}
    for p in points:
        groups.setdefault((p.site, p.owner), []).append(p)
    chosen: Dict[int, CrashPoint] = {}
    for key in sorted(groups, key=lambda k: (k[0], k[1] or "")):
        first = groups[key][0]
        chosen[first.seq] = first
        if len(chosen) >= max_points:
            break
    rest = [p for p in points if p.seq not in chosen]
    need = max_points - len(chosen)
    if need > 0 and rest:
        stride = len(rest) / need
        for k in range(need):
            p = rest[min(int(k * stride), len(rest) - 1)]
            chosen[p.seq] = p
    return sorted(chosen.values(), key=lambda p: p.seq)


@dataclass
class CrashOutcome:
    """Result of one injection run."""

    point: CrashPoint
    crashed_broker: Optional[str]
    converged_at_ms: Optional[float]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        return {
            "seq": self.point.seq,
            "site": self.point.site,
            "owner": self.point.owner,
            "crashed_broker": self.crashed_broker,
            "converged_at_ms": self.converged_at_ms,
            "violations": list(self.violations),
        }


@dataclass
class ExplorationSummary:
    """Everything a CI artifact (or a human) needs from one sweep."""

    census_points: int
    distinct_sites: int
    baseline_violations: List[str]
    outcomes: List[CrashOutcome]

    @property
    def violations(self) -> List[Tuple[Optional[CrashPoint], str]]:
        out: List[Tuple[Optional[CrashPoint], str]] = [
            (None, v) for v in self.baseline_violations
        ]
        for outcome in self.outcomes:
            out.extend((outcome.point, v) for v in outcome.violations)
        return out

    def to_json(self) -> Dict[str, object]:
        sites: Dict[str, int] = {}
        for outcome in self.outcomes:
            sites[outcome.point.site] = sites.get(outcome.point.site, 0) + 1
        return {
            "census_points": self.census_points,
            "distinct_sites": self.distinct_sites,
            "explored_points": len(self.outcomes),
            "explored_by_site": dict(sorted(sites.items())),
            "baseline_violations": list(self.baseline_violations),
            "violation_count": len(self.violations),
            "unconverged": [
                o.point.label() for o in self.outcomes
                if o.converged_at_ms is None
            ],
            "outcomes": [o.to_json() for o in self.outcomes if o.violations],
        }


def _check_oracles(scn: _Scenario) -> List[str]:
    from .oracles import check_all

    # Final truth sweep: events durably logged (and delivered) in the
    # last instants before the oracle check may postdate the last
    # 50 ms sampling tick.
    scn.record_truth()
    return check_all(
        overlay=scn.overlay,
        subscribers=scn.subscribers,
        expected_of=scn.expected,
        knowledge_probe=scn.knowledge_probe,
        truth_ids=set(scn.truth),
    )


def _explore_one(
    point: CrashPoint,
    down_ms: float,
    grace_ms: float,
    builder: Callable[[], _Scenario] = _build_scenario,
) -> CrashOutcome:
    """Replay the scenario, crash at ``point``, recover, run oracles."""
    scn = builder()
    listener = _InjectListener(point.seq)
    crashed: List[str] = []

    def on_crash(fired: CrashPoint) -> None:
        broker = scn.broker_of(fired.owner)
        if broker is None:
            crashed.append(f"<unowned:{fired.site}>")
            return
        crashed.append(broker.name)
        scn.schedule.crash_now(broker, down_ms)

    HOOKS.install(listener)
    try:
        _run_script(scn, on_crash)
        converged_at = _converge(scn, grace_ms, on_crash)
    finally:
        HOOKS.uninstall()

    violations = _check_oracles(scn)
    if listener.fired is None:
        violations.append(
            f"{point.label()}: target firing never happened "
            f"(census/injection divergence; saw {listener.seq} firings)"
        )
    elif listener.fired.site != point.site or listener.fired.owner != point.owner:
        violations.append(
            f"{point.label()}: fired as {listener.fired.label()} "
            "(census/injection divergence)"
        )
    if crashed and crashed[0].startswith("<unowned:"):
        violations.append(f"{point.label()}: boundary fired with no owner")
    if converged_at is None:
        violations.append(
            f"{point.label()}: no convergence within {grace_ms:.0f} ms grace"
        )
    return CrashOutcome(
        point=point,
        crashed_broker=crashed[0] if crashed else None,
        converged_at_ms=converged_at,
        violations=violations,
    )


def explore(
    max_points: Optional[int] = None,
    down_ms: float = 450.0,
    grace_ms: float = 20_000.0,
    progress: Optional[Callable[[int, int, CrashOutcome], None]] = None,
    scenario: str = "storage",
    sites: Optional[List[str]] = None,
) -> ExplorationSummary:
    """Census the scenario, then crash it at (a stratified subset of)
    every enumerated boundary and oracle-check each recovery.

    ``scenario`` names a :data:`SCENARIOS` entry; ``sites`` optionally
    restricts the injected points to those whose site name starts with
    one of the given prefixes (e.g. ``["migrate."]`` sweeps only the
    handoff boundaries — the census still enumerates everything, so the
    injection prefix stays deterministic).

    The baseline (no-crash) run is oracle-checked too: a violation
    there means the scenario itself is broken, not recovery.
    """
    builder = SCENARIOS[scenario]
    points = census(scenario)

    baseline = builder()
    _run_script(baseline, on_crash=lambda point: None)
    baseline_converged = _converge(
        baseline, grace_ms, on_crash=lambda point: None
    )
    baseline_violations = _check_oracles(baseline)
    if baseline_converged is None:
        baseline_violations.append("baseline run did not converge")

    candidates = points
    if sites:
        candidates = [
            p for p in points
            if any(p.site.startswith(prefix) for prefix in sites)
        ]
    selected = select_points(candidates, max_points)
    outcomes: List[CrashOutcome] = []
    for i, point in enumerate(selected):
        outcome = _explore_one(point, down_ms, grace_ms, builder)
        outcomes.append(outcome)
        if progress is not None:
            progress(i + 1, len(selected), outcome)

    return ExplorationSummary(
        census_points=len(points),
        distinct_sites=len({(p.site, p.owner) for p in points}),
        baseline_violations=baseline_violations,
        outcomes=outcomes,
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Systematically crash every storage durability "
        "boundary in a scripted pub/sub scenario and verify recovery."
    )
    parser.add_argument(
        "--max-points", type=int, default=None,
        help="bound the injection runs to a stratified subset "
        "(default: every enumerated point — the full sweep)",
    )
    parser.add_argument("--down-ms", type=float, default=450.0,
                        help="how long a crashed broker stays down")
    parser.add_argument("--grace-ms", type=float, default=20_000.0,
                        help="post-script convergence grace window")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON summary here")
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default="storage",
        help="which scripted scenario to sweep (default: storage)",
    )
    parser.add_argument(
        "--sites", type=str, default=None,
        help="comma-separated site-name prefixes to restrict injections "
        'to (e.g. "migrate." sweeps only the handoff boundaries)',
    )
    args = parser.parse_args(argv)

    def progress(done: int, total: int, outcome: CrashOutcome) -> None:
        if outcome.violations or done % 25 == 0 or done == total:
            status = "VIOLATION" if outcome.violations else "ok"
            print(f"[{done}/{total}] {outcome.point.label()}: {status}")
            for v in outcome.violations:
                print(f"    {v}")

    sites = (
        [s for s in args.sites.split(",") if s] if args.sites else None
    )
    summary = explore(
        max_points=args.max_points, down_ms=args.down_ms,
        grace_ms=args.grace_ms, progress=progress,
        scenario=args.scenario, sites=sites,
    )
    blob = summary.to_json()
    print(json.dumps({k: blob[k] for k in (
        "census_points", "distinct_sites", "explored_points",
        "violation_count",
    )}))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(blob, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if summary.violations else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    # Under ``python -m`` this file runs as ``__main__`` while the
    # storage modules import (and fire) ``repro.sim.crashpoints.HOOKS``
    # — a different module object, so a listener installed here would
    # record nothing.  Delegate to the canonical package module.
    from repro.sim.crashpoints import main as _pkg_main

    raise SystemExit(_pkg_main())
