"""Failure injection schedules for experiments and tests.

The Section 5.3 experiment scripts one SHB crash by hand; this module
generalizes that into declarative schedules — broker crash windows,
link partitions, client-machine crashes, and periodic GC-style stalls —
so experiments compose failure scenarios instead of sprinkling
``sim.at(...)`` calls.

All times are absolute simulation milliseconds.  Every injected fault
is recorded so tests can assert against what actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..broker.base import Broker
from ..net.link import Link
from ..net.node import Node
from ..net.simtime import Scheduler


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for post-run assertions."""

    kind: str          # 'crash', 'partition', 'stall'
    target: str
    at_ms: float
    duration_ms: float


class FailureSchedule:
    """Declarative fault injection bound to one scheduler."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self.records: List[FaultRecord] = []
        self._stall_timers = []

    # ------------------------------------------------------------------
    # Broker / node crashes
    # ------------------------------------------------------------------
    def crash_broker(self, broker: Broker, at_ms: float, down_ms: float) -> None:
        """Crash-stop ``broker`` at ``at_ms`` and recover after ``down_ms``."""
        self.records.append(FaultRecord("crash", broker.name, at_ms, down_ms))
        self.scheduler.at(at_ms, broker.fail_for, down_ms)

    def crash_node(self, node: Node, at_ms: float, down_ms: float) -> None:
        """Crash a raw node (e.g. a client machine)."""
        self.records.append(FaultRecord("crash", node.name, at_ms, down_ms))
        self.scheduler.at(at_ms, node.fail_for, down_ms)

    def repeated_crashes(
        self, broker: Broker, first_at_ms: float, down_ms: float,
        period_ms: float, count: int,
    ) -> None:
        """``count`` evenly spaced crash/recovery cycles."""
        for k in range(count):
            self.crash_broker(broker, first_at_ms + k * period_ms, down_ms)

    # ------------------------------------------------------------------
    # Link partitions
    # ------------------------------------------------------------------
    def partition_link(self, link: Link, at_ms: float, duration_ms: float,
                       name: str = "link") -> None:
        """Sever a link for ``duration_ms`` (messages silently dropped),
        then restore it; the protocol recovers via nacks."""
        self.records.append(FaultRecord("partition", name, at_ms, duration_ms))
        self.scheduler.at(at_ms, link.sever)
        self.scheduler.at(at_ms + duration_ms, link.restore)

    # ------------------------------------------------------------------
    # CPU stalls (GC pauses etc.)
    # ------------------------------------------------------------------
    def periodic_stall(self, node: Node, period_ms: float, pause_ms: float,
                       first_at_ms: Optional[float] = None) -> None:
        """Stall ``node``'s CPU for ``pause_ms`` every ``period_ms``.

        Models the Java GC pauses behind the dips in Figure 6.
        """
        def stall() -> None:
            self.records.append(
                FaultRecord("stall", node.name, self.scheduler.now, pause_ms)
            )
            node.stall(pause_ms)

        timer = self.scheduler.every(period_ms, stall, first_delay=first_at_ms)
        self._stall_timers.append(timer)

    def stop(self) -> None:
        """Cancel periodic fault sources (one-shot faults still fire)."""
        for timer in self._stall_timers:
            timer.cancel()
        self._stall_timers = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def faults_of(self, kind: str) -> List[FaultRecord]:
        return [r for r in self.records if r.kind == kind]

    def records_between(self, t0: float, t1: float) -> List[FaultRecord]:
        """Faults whose injection time falls in ``[t0, t1]``, in time order.

        The query tests want: "what actually went wrong inside this
        window" — e.g. assert that exactly one crash was injected during
        the measurement span instead of re-deriving it from the schedule
        parameters inline.
        """
        return sorted(
            (r for r in self.records if t0 <= r.at_ms <= t1),
            key=lambda r: (r.at_ms, r.target, r.kind),
        )

    def __len__(self) -> int:
        return len(self.records)
