"""Failure injection schedules for experiments and tests.

The Section 5.3 experiment scripts one SHB crash by hand; this module
generalizes that into declarative schedules — broker crash windows,
link partitions, client-machine crashes, and periodic GC-style stalls —
so experiments compose failure scenarios instead of sprinkling
``sim.at(...)`` calls.

All times are absolute simulation milliseconds.  Every injected fault
is recorded so tests can assert against what actually happened.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..broker.base import Broker
from ..net.link import FaultSpec, Link
from ..net.node import Node
from ..net.simtime import PeriodicHandle, Scheduler


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for post-run assertions."""

    kind: str          # 'crash', 'partition', 'stall', 'loss_burst'
    target: str
    at_ms: float
    duration_ms: float


def link_target_name(link: Link) -> str:
    """A stable fault-record target for a link, from its endpoints."""
    return f"{link.a_to_b.sender.name}<->{link.b_to_a.sender.name}"


class FailureSchedule:
    """Declarative fault injection bound to one scheduler."""

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self.records: List[FaultRecord] = []
        self._stall_timers = []

    # ------------------------------------------------------------------
    # Broker / node crashes
    # ------------------------------------------------------------------
    def crash_broker(self, broker: Broker, at_ms: float, down_ms: float) -> None:
        """Crash-stop ``broker`` at ``at_ms`` and recover after ``down_ms``."""
        self.records.append(FaultRecord("crash", broker.name, at_ms, down_ms))
        self.scheduler.at(at_ms, broker.fail_for, down_ms)

    def crash_now(self, broker: Broker, down_ms: float) -> None:
        """Crash-stop ``broker`` immediately and recover after ``down_ms``.

        The crash-point explorer decides the crash target only once an
        armed hook fires mid-event, so it cannot pre-schedule the crash
        the way ``crash_broker`` does; this records the same
        :class:`FaultRecord` for uniform post-run accounting.
        """
        self.records.append(
            FaultRecord("crash", broker.name, self.scheduler.now, down_ms)
        )
        broker.fail_for(down_ms)

    def crash_node(self, node: Node, at_ms: float, down_ms: float) -> None:
        """Crash a raw node (e.g. a client machine)."""
        self.records.append(FaultRecord("crash", node.name, at_ms, down_ms))
        self.scheduler.at(at_ms, node.fail_for, down_ms)

    def repeated_crashes(
        self, broker: Broker, first_at_ms: float, down_ms: float,
        period_ms: float, count: int,
    ) -> None:
        """``count`` evenly spaced crash/recovery cycles."""
        for k in range(count):
            self.crash_broker(broker, first_at_ms + k * period_ms, down_ms)

    # ------------------------------------------------------------------
    # Link partitions
    # ------------------------------------------------------------------
    def partition_link(self, link: Link, at_ms: float, duration_ms: float,
                       name: Optional[str] = None) -> None:
        """Sever a link for ``duration_ms`` (messages silently dropped),
        then restore it; the protocol recovers via nacks.

        The record's target defaults to ``a<->b`` from the link's
        endpoint nodes, so ``records_between`` assertions can tell
        concurrent partitions apart.
        """
        if name is None:
            name = link_target_name(link)
        self.records.append(FaultRecord("partition", name, at_ms, duration_ms))
        self.scheduler.at(at_ms, link.sever)
        self.scheduler.at(at_ms + duration_ms, link.restore)

    # ------------------------------------------------------------------
    # Lossy-link bursts
    # ------------------------------------------------------------------
    def loss_burst(
        self,
        link: Link,
        at_ms: float,
        duration_ms: float,
        spec: FaultSpec,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        """Make ``link`` lossy (both directions) for a window.

        Installs ``spec`` on both directions at ``at_ms`` and clears it
        at ``at_ms + duration_ms``.  Overlapping bursts on one link
        compose by last-writer-wins on the spec; the per-direction RNG
        persists across bursts (see LinkEnd.set_faults).
        """
        if name is None:
            name = link_target_name(link)
        self.records.append(FaultRecord("loss_burst", name, at_ms, duration_ms))
        self.scheduler.at(at_ms, link.set_faults, spec, spec, seed)
        self.scheduler.at(at_ms + duration_ms, link.clear_faults)

    # ------------------------------------------------------------------
    # CPU stalls (GC pauses etc.)
    # ------------------------------------------------------------------
    def periodic_stall(self, node: Node, period_ms: float, pause_ms: float,
                       first_at_ms: Optional[float] = None) -> None:
        """Stall ``node``'s CPU for ``pause_ms`` every ``period_ms``.

        Models the Java GC pauses behind the dips in Figure 6.
        """
        def stall() -> None:
            self.records.append(
                FaultRecord("stall", node.name, self.scheduler.now, pause_ms)
            )
            node.stall(pause_ms)

        timer = self.scheduler.every(period_ms, stall, first_delay=first_at_ms)
        self._stall_timers.append(timer)

    def stop(self) -> None:
        """Cancel periodic fault sources (one-shot faults still fire)."""
        for timer in self._stall_timers:
            timer.cancel()
        self._stall_timers = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def faults_of(self, kind: str) -> List[FaultRecord]:
        return [r for r in self.records if r.kind == kind]

    def records_between(self, t0: float, t1: float) -> List[FaultRecord]:
        """Faults whose injection time falls in ``[t0, t1]``, in time order.

        The query tests want: "what actually went wrong inside this
        window" — e.g. assert that exactly one crash was injected during
        the measurement span instead of re-deriving it from the schedule
        parameters inline.
        """
        return sorted(
            (r for r in self.records if t0 <= r.at_ms <= t1),
            key=lambda r: (r.at_ms, r.target, r.kind),
        )

    def __len__(self) -> int:
        return len(self.records)


class ChaosSchedule(FailureSchedule):
    """A seeded random fault schedule over a topology's brokers/links.

    ``generate()`` draws crashes, partitions, loss bursts and CPU
    stalls from ``random.Random(seed)`` inside ``[start_ms,
    fault_horizon_ms]``; the soak harness runs well past the horizon so
    every invariant is checked against a converged quiet tail.  Same
    seed + same targets → the identical schedule, which is what makes
    a failing soak seed a reproducible bug report.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        seed: int,
        brokers: Sequence[Broker] = (),
        links: Sequence[Link] = (),
        client_nodes: Sequence[Node] = (),
    ) -> None:
        super().__init__(scheduler)
        self.seed = seed
        self.brokers = list(brokers)
        self.links = list(links)
        self.client_nodes = list(client_nodes)
        self.rng = random.Random(f"chaos:{seed}")
        self._phase_plans: dict = {}

    def generate(
        self,
        fault_horizon_ms: float,
        start_ms: float = 1_000.0,
        crashes: int = 2,
        partitions: int = 2,
        loss_bursts: int = 3,
        stalls: int = 2,
        client_crashes: int = 2,
        max_down_ms: float = 1_500.0,
    ) -> None:
        rng = self.rng

        def window(max_len: float) -> Tuple[float, float]:
            at = rng.uniform(start_ms, fault_horizon_ms)
            length = rng.uniform(100.0, max_len)
            return at, length

        for _ in range(crashes):
            if not self.brokers:
                break
            at, down = window(max_down_ms)
            self.crash_broker(rng.choice(self.brokers), at, down)
        for _ in range(partitions):
            if not self.links:
                break
            at, down = window(max_down_ms)
            self.partition_link(rng.choice(self.links), at, down)
        for _ in range(loss_bursts):
            if not self.links:
                break
            at, length = window(2_500.0)
            spec = FaultSpec(
                drop_p=rng.uniform(0.02, 0.25),
                dup_p=rng.uniform(0.0, 0.10),
                reorder_p=rng.uniform(0.0, 0.20),
                reorder_max_ms=rng.uniform(1.0, 8.0),
                corrupt_p=rng.uniform(0.0, 0.10),
            )
            self.loss_burst(rng.choice(self.links), at, length, spec, seed=self.seed)
        for _ in range(stalls):
            if not self.brokers:
                break
            at = rng.uniform(start_ms, fault_horizon_ms)
            pause = rng.uniform(50.0, 400.0)
            node = rng.choice(self.brokers).node
            self.records.append(FaultRecord("stall", node.name, at, pause))
            self.scheduler.at(at, node.stall, pause)
        for _ in range(client_crashes):
            if not self.client_nodes:
                break
            at, down = window(max_down_ms)
            self.crash_node(rng.choice(self.client_nodes), at, down)

    # ------------------------------------------------------------------
    # Phase-relative triggers
    # ------------------------------------------------------------------
    # Dynamic-topology runs have windows whose absolute position is not
    # known when the schedule is built — "while the handoff is in
    # flight" starts whenever the supervisor starts it.  A phase plan is
    # registered up front (so the draw order is fixed by seed + phase
    # name, independent of when — or whether — the phase occurs) and
    # armed by ``mark_phase`` at the moment the run enters the phase:
    # every fault lands at now + a bounded offset.
    def plan_phase(
        self,
        phase: str,
        crashes: int = 0,
        partitions: int = 0,
        loss_bursts: int = 0,
        window_ms: float = 1_500.0,
        max_down_ms: float = 600.0,
        brokers: Optional[Sequence[Broker]] = None,
        links: Optional[Sequence[Link]] = None,
    ) -> None:
        """Register a named fault phase (e.g. ``"during-migration"``).

        ``brokers``/``links`` narrow the target pool — a migration
        phase typically aims at the source SHB, destination SHB and
        their uplinks rather than the whole overlay.
        """
        self._phase_plans[phase] = {
            "crashes": crashes,
            "partitions": partitions,
            "loss_bursts": loss_bursts,
            "window_ms": window_ms,
            "max_down_ms": max_down_ms,
            "brokers": list(brokers) if brokers is not None else None,
            "links": list(links) if links is not None else None,
            "rng": random.Random(f"chaos:{self.seed}:{phase}"),
        }

    def mark_phase(self, phase: str) -> None:
        """Enter a planned phase now: schedule its faults relative to now.

        Marking an unplanned phase is a no-op; marking the same phase
        again draws fresh faults from the phase's own RNG (deterministic
        per seed and per marking order within the phase).
        """
        plan = self._phase_plans.get(phase)
        if plan is None:
            return
        rng = plan["rng"]
        now = self.scheduler.now
        brokers = plan["brokers"] if plan["brokers"] is not None else self.brokers
        links = plan["links"] if plan["links"] is not None else self.links
        for _ in range(plan["crashes"]):
            if not brokers:
                break
            at = now + rng.uniform(0.0, plan["window_ms"])
            down = rng.uniform(100.0, plan["max_down_ms"])
            self.crash_broker(rng.choice(brokers), at, down)
        for _ in range(plan["partitions"]):
            if not links:
                break
            at = now + rng.uniform(0.0, plan["window_ms"])
            down = rng.uniform(100.0, plan["max_down_ms"])
            self.partition_link(rng.choice(links), at, down)
        for _ in range(plan["loss_bursts"]):
            if not links:
                break
            at = now + rng.uniform(0.0, plan["window_ms"])
            length = rng.uniform(100.0, plan["window_ms"])
            spec = FaultSpec(
                drop_p=rng.uniform(0.02, 0.25),
                dup_p=rng.uniform(0.0, 0.10),
                reorder_p=rng.uniform(0.0, 0.20),
                reorder_max_ms=rng.uniform(1.0, 8.0),
            )
            self.loss_burst(rng.choice(links), at, length, spec, seed=self.seed)


class ProgressWatchdog:
    """A livelock detector: samples a progress probe on a fixed beat.

    The probe is any monotonically non-decreasing measure of forward
    progress (the soak uses the SHB's ``latestDelivered``).  The
    watchdog records every sample; ``stalled_windows`` reports spans
    with no increase, and ``progressed_between`` is the assertion
    helper — "after the last fault healed, did the system move?".
    """

    def __init__(
        self,
        scheduler: Scheduler,
        probe: Callable[[], float],
        interval_ms: float = 500.0,
        name: str = "progress",
    ) -> None:
        self.scheduler = scheduler
        self.probe = probe
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self._timer: Optional[PeriodicHandle] = scheduler.every(
            interval_ms, self._sample
        )

    def _sample(self) -> None:
        self.samples.append((self.scheduler.now, float(self.probe())))

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def progressed_between(self, t0: float, t1: float) -> bool:
        """True iff the probe increased somewhere inside ``[t0, t1]``."""
        inside = [v for t, v in self.samples if t0 <= t <= t1]
        return len(inside) >= 2 and inside[-1] > inside[0]

    def stalled_windows(self, min_ms: float = 0.0) -> List[Tuple[float, float]]:
        """Maximal spans (start, end) during which the probe never rose."""
        out: List[Tuple[float, float]] = []
        start: Optional[float] = None
        last_t: Optional[float] = None
        prev: Optional[float] = None
        for t, v in self.samples:
            if prev is not None and v <= prev:
                if start is None:
                    start = last_t if last_t is not None else t
            else:
                if start is not None and last_t is not None:
                    if last_t - start >= min_ms:
                        out.append((start, last_t))
                    start = None
            prev = max(v, prev) if prev is not None else v
            last_t = t
        if start is not None and last_t is not None and last_t - start >= min_ms:
            out.append((start, last_t))
        return out

    @property
    def longest_stall_ms(self) -> float:
        windows = self.stalled_windows()
        return max((end - start for start, end in windows), default=0.0)


class PerSubscriberWatchdog:
    """Per-subscriber progress tracking for chaos soaks.

    An aggregate probe (max delivered over all subscribers) hides the
    failure mode dynamic topology introduces: one migrated subscriber
    silently wedged while everyone else advances.  This samples one
    monotone probe *per subscriber* (typically its consumed-CT maximum)
    and reports the laggards.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        probes: "dict[str, Callable[[], float]]",
        interval_ms: float = 500.0,
    ) -> None:
        self.watchdogs = {
            name: ProgressWatchdog(scheduler, probe, interval_ms, name=name)
            for name, probe in probes.items()
        }

    def stop(self) -> None:
        for wd in self.watchdogs.values():
            wd.stop()

    def final_values(self) -> "dict[str, float]":
        return {
            name: (wd.samples[-1][1] if wd.samples else 0.0)
            for name, wd in self.watchdogs.items()
        }

    def stalled_subscribers(
        self, t0: float, t1: float, behind: "Optional[Set[str]]" = None
    ) -> List[str]:
        """Subscribers that neither advanced in ``[t0, t1]`` nor ended
        caught up.

        A subscriber already fully caught up before ``t0`` legitimately
        shows no progress — it is only *stalled* if it also finished
        with ground left to cover.  ``behind`` names those subscribers
        when the caller can compute true per-subscriber expectations
        (subscribers with different predicates owe different counts);
        without it, finishing below the pack's best final value is used
        as a proxy, which is only sound when every probe measures the
        same quantity.
        """
        finals = self.final_values()
        if behind is None:
            best = max(finals.values(), default=0.0)
            behind = {name for name, v in finals.items() if v < best}
        return sorted(
            name
            for name, wd in self.watchdogs.items()
            if not wd.progressed_between(t0, t1) and name in behind
        )
