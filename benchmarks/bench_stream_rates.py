"""Figure 6: advance rates of latestDelivered(p) and released(p).

Paper: *"Since latestDelivered(p) is not affected by disconnected
subscribers it steadily advances at a rate close to 1000 tick
milliseconds every second of real time.  The periodic drop in rate to
about 700 tick ms every second, is due to periodic garbage collection
in the Java VM running the SHB.  In comparison, released(p) shows much
larger variation since subscriber disconnection causes it to stop
advancing."*

The bench runs the 2-broker churn experiment near SHB saturation with
periodic injected CPU stalls standing in for the JVM GC pauses, and
reports both rate series.
"""

from conftest import full_scale, write_result

from repro.metrics.report import format_table
from repro.sim.experiments import run_message_amplification, run_stream_rates


def test_stream_advance_rates(benchmark):
    duration = 250_000.0 if full_scale() else 60_000.0
    result = benchmark.pedantic(
        lambda: run_stream_rates(
            duration_ms=duration,
            churn_period_ms=30_000.0,
            churn_down_ms=1_000.0,
            subs=88,                      # near the SHB's capacity
            gc_pause_ms=400.0,            # the paper's GC dips
            gc_period_ms=10_000.0,
        ),
        rounds=1,
        iterations=1,
    )
    ld = result.latest_delivered_rate.values()[3:]
    rel = result.released_rate.values()[3:]
    ld_mean = sum(ld) / len(ld)
    rows = [
        ["latestDelivered mean (tick-ms/s)", f"{ld_mean:.0f}", "~1000"],
        ["latestDelivered min (GC dip)", f"{min(ld):.0f}", "~700"],
        ["latestDelivered max", f"{max(ld):.0f}", "~1000+"],
        ["released mean (tick-ms/s)", f"{sum(rel) / len(rel):.0f}", "~1000"],
        ["released min (stall)", f"{min(rel):.0f}", "~500 or less"],
        ["released max (burst)", f"{max(rel):.0f}", "up to ~4000"],
    ]
    write_result(
        "stream_rates",
        format_table("Figure 6: latestDelivered / released advance rates",
                     ["metric", "measured", "paper"], rows),
    )

    # Shapes: LD tracks real time; GC dips visible; released varies more.
    assert abs(ld_mean - 1000.0) < 100.0
    assert min(ld) < 850.0, "GC dips should be visible in the LD rate"
    assert min(rel) < min(ld), "released stalls deeper than latestDelivered"
    assert max(rel) > max(ld), "released bursts above normal during catch-up"


def test_batching_message_amplification(benchmark):
    """Batched delivery collapses per-link messages at full input rate.

    16 subscribers all matching all 800 ev/s is the worst-case fan-out;
    a 10 ms window must cut link transmissions per published event by at
    least 3x without costing a single delivery.
    """
    duration = 30_000.0 if full_scale() else 10_000.0

    def run_pair():
        base = run_message_amplification(0.0, duration_ms=duration)
        batched = run_message_amplification(10.0, duration_ms=duration)
        return base, batched

    base, batched = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    reduction = base.messages_per_event / batched.messages_per_event
    rows = [
        ["link msgs per event (window 0)", f"{base.messages_per_event:.2f}", "-"],
        ["link msgs per event (window 10ms)", f"{batched.messages_per_event:.2f}", "-"],
        ["reduction", f"{reduction:.1f}x", ">= 3x"],
        ["mean batch size (10ms)", f"{batched.mean_batch_size:.1f}", "> 1"],
        ["events delivered (0 / 10ms)",
         f"{base.events_delivered} / {batched.events_delivered}", "equal"],
    ]
    write_result(
        "batching_amplification",
        format_table("Batching: link messages per published event",
                     ["metric", "measured", "target"], rows),
    )
    assert base.exactly_once_ok and batched.exactly_once_ok
    assert batched.events_delivered == base.events_delivered
    assert reduction >= 3.0, f"only {reduction:.2f}x message reduction"
