"""Ablation: event cache size vs catchup cost (the paper's future work).

Section 7: *"Future work includes experimentally examining the effect
of different event cache sizes and management policies, on the catchup
rate of reconnecting subscriptions."*

This bench runs the churn workload with the SHB's event cache bounded
to different spans and measures (a) mean catchup duration and (b) how
much recovery traffic escapes to the PHB (nacks served upstream vs from
the local cache).  Expected shape: with a cache covering the
disconnection window, recovery stays local and the PHB serves almost
nothing; with a tiny cache every catchup goes to the PHB's log.
"""

import pytest
from conftest import full_scale, write_result

from repro import DurableSubscriber, Node, PeriodicPublisher, Scheduler, build_two_broker
from repro.metrics.report import format_table
from repro.workloads.generator import (
    ChurnSchedule,
    PaperWorkloadSpec,
    make_publishers,
    make_subscribers,
)

_rows = []

#: Cache spans to sweep, as multiples of the disconnection length.
SPANS = [(0.2, "0.2x down"), (1.0, "1x down"), (8.0, "8x down")]


def _run(cache_span_ms, down_ms, duration_ms):
    spec = PaperWorkloadSpec()
    sim = Scheduler()
    overlay = build_two_broker(
        sim, spec.pubend_names(), event_cache_span_ms=int(cache_span_ms)
    )
    shb = overlay.shbs[0]
    publishers = make_publishers(sim, overlay.phb, spec)
    subs = make_subscribers(sim, overlay.shbs, spec, 24)
    ChurnSchedule(sim, subs, shb_of=lambda s: shb,
                  period_ms=duration_ms / 3, down_ms=down_ms)
    sim.run_until(duration_ms)
    for pub in publishers:
        pub.stop()
    sim.run_until(duration_ms + 10_000)
    durations = [d for _t, d in shb.catchup_durations_ms]
    phb_nacks = overlay.phb.nacks_served
    cache_nacks = shb.cache_served_nacks
    ok = all(s.stats.order_violations == 0 and s.stats.gaps == 0 for s in subs)
    return durations, phb_nacks, cache_nacks, ok


@pytest.mark.parametrize("multiple,label", SPANS)
def test_cache_span_vs_catchup(benchmark, multiple, label):
    down_ms = 2_000.0
    duration = 120_000.0 if full_scale() else 45_000.0
    durations, phb_nacks, cache_nacks, ok = benchmark.pedantic(
        lambda: _run(multiple * down_ms, down_ms, duration), rounds=1, iterations=1
    )
    assert ok, "delivery guarantee must hold at every cache size"
    assert durations, "churn must produce catchups"
    mean = sum(durations) / len(durations)
    local_fraction = cache_nacks / max(1, cache_nacks + phb_nacks)
    _rows.append([label, len(durations), f"{mean / 1000:.2f}",
                  phb_nacks, cache_nacks, f"{local_fraction:.0%}"])
    if len(_rows) == len(SPANS):
        table = format_table(
            "Ablation: SHB event cache span vs catchup (2s disconnections)",
            ["cache span", "catchups", "mean dur (s)",
             "PHB-served nacks", "cache-served nacks", "served locally"],
            _rows,
        )
        write_result("ablation_cache", table)
        # Shape: a cache covering the outage keeps recovery local.
        small = next(r for r in _rows if r[0] == SPANS[0][1])
        large = next(r for r in _rows if r[0] == SPANS[-1][1])
        assert int(large[3]) < int(small[3]), (
            "a larger cache must offload the PHB"
        )
