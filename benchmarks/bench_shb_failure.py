"""Figures 7 and 8: SHB crash and recovery (Section 5.3).

Setup from the paper: the 2-broker network, 40 durable subscribers at
200 ev/s each spread over 5 client machines (1600 ev/s per machine),
800 ev/s input over 4 pubends.  The SHB is failed for 25 s; subscriber
reconnection is delayed until the constream has nacked and received
everything it missed, then all 40 reconnect at once.

Reported shapes:

* Figure 7 (top): latestDelivered flat while the SHB is down, then a
  much steeper slope (~5x) while the constream nacks, then normal.
* Figure 7 (bottom): released(p) stalls until the subscribers
  reconnect, then advances slightly above normal until catchup ends.
* Figure 8 (top): per-machine rates at 1600 ev/s before the crash, on
  average *higher* during catchup (missed + live traffic).
* Figure 8 (bottom): PHB CPU barely affected (nack consolidation); the
  SHB's idle time drops sharply during catchup.
* Most PFS batch reads reach lastTimestamp (87% in the paper).
"""

from conftest import full_scale, write_result

from repro.metrics.report import format_table
from repro.sim.experiments import run_shb_failure


def test_shb_crash_and_recovery(benchmark):
    if full_scale():
        kwargs = dict(crash_at_ms=30_000.0, down_ms=25_000.0, total_ms=320_000.0)
    else:
        kwargs = dict(crash_at_ms=15_000.0, down_ms=25_000.0, total_ms=260_000.0)

    result = benchmark.pedantic(
        lambda: run_shb_failure(n_subs=40, subs_per_machine=8, **kwargs),
        rounds=1,
        iterations=1,
    )

    assert result.exactly_once_ok, "delivery guarantee violated during failure"

    crash_at, down = kwargs["crash_at_ms"], kwargs["down_ms"]
    recover_at = crash_at + down

    # Figure 7 top: latestDelivered flat during the outage.
    ld = result.latest_delivered
    during = ld.between(crash_at + 2_000, recover_at - 1_000).values()
    assert during and max(during) - min(during) < 100.0, "LD moved while SHB down"

    # Recovery slope well above normal, bounded by nack pacing.
    slope_ratio = result.recovery_slope / result.normal_slope
    assert slope_ratio > 2.0

    # Figure 7 bottom: released stalls at least until reconnection.
    # (The committed-ack rollback at the crash instant may step the
    # gauge down once; the stall is measured strictly inside the
    # outage.)
    rel = result.released
    stall = rel.between(crash_at + 2_000, recover_at - 1_000).values()
    assert stall and max(stall) - min(stall) < 100.0

    # Figure 8 top: machine rates ~1600 before; higher on average during
    # catchup.
    pre_rates = [s.between(5_000, crash_at - 1_000).mean() for s in result.machine_rates]
    for rate in pre_rates:
        assert abs(rate - 1_600.0) < 160.0
    catchup_end = recover_at + max(result.catchup_durations_ms or [0])
    post = [s.between(recover_at + 3_000, catchup_end).mean() for s in result.machine_rates]
    mean_post = sum(post) / len(post)
    mean_pre = sum(pre_rates) / len(pre_rates)
    assert mean_post > mean_pre, "catchup rate should exceed the normal rate"

    # Figure 8 bottom: PHB barely affected; SHB idle drops during catchup.
    phb_normal = result.phb_idle.between(5_000, crash_at - 1_000).mean()
    phb_catchup = result.phb_idle.between(recover_at + 2_000, catchup_end).mean()
    shb_normal = result.shb_idle.between(5_000, crash_at - 1_000).mean()
    shb_catchup = result.shb_idle.between(recover_at + 2_000, catchup_end).mean()
    assert phb_normal - phb_catchup < 0.15, "nack consolidation keeps PHB load low"
    assert shb_catchup < shb_normal, "catchup load is localized to the SHB"

    mean_catchup = (
        sum(result.catchup_durations_ms) / len(result.catchup_durations_ms)
        if result.catchup_durations_ms else 0.0
    )
    rows = [
        ["subscribers / machines", "40 / 5", "40 / 5"],
        ["SHB outage (s)", f"{down / 1000:.0f}", "25"],
        ["disconnected (s, mean)",
         f"{sum(result.disconnected_ms) / len(result.disconnected_ms) / 1000:.1f}",
         "37.55"],
        ["constream recovery slope / normal", f"{slope_ratio:.1f}x", "~5x"],
        ["mean catchup duration (s)", f"{mean_catchup / 1000:.1f}", "116"],
        ["machine rate pre-crash (ev/s)", f"{mean_pre:,.0f}", "1600"],
        ["machine rate during catchup (ev/s)", f"{mean_post:,.0f}", ">1600, varying"],
        ["PHB idle normal -> catchup",
         f"{phb_normal:.0%} -> {phb_catchup:.0%}", "slight drop"],
        ["SHB idle normal -> catchup",
         f"{shb_normal:.0%} -> {shb_catchup:.0%}", "significant drop"],
        ["PFS reads reaching lastTimestamp",
         f"{result.pfs_reads_reaching_last_fraction:.0%}", "87%"],
        ["exactly-once verified", result.exactly_once_ok, "yes"],
    ]
    write_result(
        "shb_failure",
        format_table("Figures 7+8: SHB crash and recovery",
                     ["metric", "measured", "paper"], rows),
    )
