"""Section 5.2: JMS auto-acknowledge peak throughput.

Paper: *"In our experiments with a single SHB, we measured the peak
aggregate rate for 25 subscribers and 200 subscribers, which was 4K
events/s and 7.6K events/s respectively.  The bottleneck at the SHB for
JMS auto-acknowledge is the update and commit throughput of the
database ... the SHB used 4 JDBC connections each associated with a
thread ... Each thread explicitly batched all the waiting requests into
one database transaction."*

Auto-ack commits the per-subscriber CT at the SHB for every consumed
event; the offered rate is set above commit capacity, so the measured
consumption rate *is* the commit bottleneck.  More subscribers batch
better (one transaction covers more of them), hence the sub-linear
25 → 200 growth.
"""

import pytest
from conftest import full_scale, write_result

from repro.metrics.report import format_table
from repro.sim.experiments import run_jms_autoack

PAPER = {25: 4_000, 200: 7_600}
_results = {}


@pytest.mark.parametrize("n_subs,input_rate", [(25, 800), (200, 200)])
def test_jms_autoack_peak(benchmark, n_subs, input_rate):
    duration = 60_000.0 if full_scale() else 15_000.0
    result = benchmark.pedantic(
        lambda: run_jms_autoack(n_subs, input_rate=input_rate, duration_ms=duration),
        rounds=1,
        iterations=1,
    )
    _results[n_subs] = result

    # Commit-bound: consumption saturates below the offered rate.
    assert result.consumed_rate < result.offered_rate * 0.98
    # Within 25% of the paper's absolute figure.
    assert result.consumed_rate == pytest.approx(PAPER[n_subs], rel=0.25)

    if len(_results) == 2:
        r25, r200 = _results[25], _results[200]
        rows = [
            ["25 subscribers", f"{r25.consumed_rate:,.0f}", f"{PAPER[25]:,}",
             f"{r25.commits_per_s:,.0f}"],
            ["200 subscribers", f"{r200.consumed_rate:,.0f}", f"{PAPER[200]:,}",
             f"{r200.commits_per_s:,.0f}"],
        ]
        table = format_table(
            "Section 5.2: JMS auto-ack peak rate (events/s)",
            ["configuration", "measured", "paper", "commits/s"],
            rows,
        )
        ratio = r200.consumed_rate / r25.consumed_rate
        table += f"\n\n200/25-subscriber throughput ratio: {ratio:.2f}x (paper: 1.9x)"
        write_result("jms_autoack", table)
        # Sub-linear growth from batching, as in the paper.
        assert 1.2 < ratio < 3.0
