"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md §3).  Results are printed *and* written under
``benchmarks/results/`` so they survive pytest's output capturing; the
EXPERIMENTS.md paper-vs-measured record is assembled from those files.

Set ``REPRO_BENCH_SCALE=full`` for paper-length runs (minutes of
simulated time per configuration); the default runs are time-compressed
but preserve every qualitative shape.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


def write_result(name: str, text: str) -> None:
    """Persist a bench's report (and echo it for -s runs)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
