"""Ablation: catchup via PFS vs wholesale refiltering.

The PFS's purpose (Section 4.2): *"This is an important optimization
since it avoids retrieving and refiltering events that did not match
the subscriber."*  This bench quantifies that, at system level, by
running the same disconnect/reconnect workload with catchup driven by
PFS batch reads versus the fallback that nacks the entire missed span
and refilters (``use_pfs_for_catchup=False``).

Expected shape: without the PFS, every catchup must fetch ~4x the
events (subscribers match 1/4 of the stream) plus all silence ranges,
so recovery traffic and SHB work rise sharply while exactly-once still
holds.
"""

import pytest
from conftest import full_scale, write_result

from repro import Scheduler, build_two_broker
from repro.metrics.report import format_table
from repro.workloads.generator import (
    ChurnSchedule,
    PaperWorkloadSpec,
    make_publishers,
    make_subscribers,
)

_rows = {}


def _run(use_pfs):
    spec = PaperWorkloadSpec()
    sim = Scheduler()
    overlay = build_two_broker(
        sim, spec.pubend_names(), use_pfs_for_catchup=use_pfs
    )
    shb = overlay.shbs[0]
    publishers = make_publishers(sim, overlay.phb, spec)
    subs = make_subscribers(sim, overlay.shbs, spec, 24)
    duration = 90_000.0 if full_scale() else 40_000.0
    ChurnSchedule(sim, subs, shb_of=lambda s: shb,
                  period_ms=duration / 2, down_ms=2_000.0)
    sim.run_until(duration)
    for pub in publishers:
        pub.stop()
    sim.run_until(duration + 15_000)
    durations = [d for _t, d in shb.catchup_durations_ms]
    ok = all(s.stats.order_violations == 0 and s.stats.gaps == 0
             and s.duplicate_events == 0 for s in subs)
    return {
        "durations": durations,
        "ok": ok,
        "ticks_nacked": shb.catchup_ticks_nacked,
        "shb_busy_ms": shb.node.busy.total_busy_ms,
    }


@pytest.mark.parametrize("use_pfs", [True, False], ids=["pfs", "refilter"])
def test_pfs_vs_refiltering_catchup(benchmark, use_pfs):
    result = benchmark.pedantic(lambda: _run(use_pfs), rounds=1, iterations=1)
    assert result["ok"], "exactly-once must hold in both modes"
    assert result["durations"], "churn must produce catchups"
    _rows["pfs" if use_pfs else "refilter"] = result
    if len(_rows) == 2:
        pfs, refilter = _rows["pfs"], _rows["refilter"]
        mean = lambda r: sum(r["durations"]) / len(r["durations"])
        rows = [
            ["PFS catchup", f"{mean(pfs) / 1000:.2f}", pfs["ticks_nacked"],
             f"{pfs['shb_busy_ms']:,.0f}"],
            ["refiltering catchup", f"{mean(refilter) / 1000:.2f}",
             refilter["ticks_nacked"], f"{refilter['shb_busy_ms']:,.0f}"],
        ]
        table = format_table(
            "Ablation: PFS vs refiltering catchup (2s disconnections)",
            ["mode", "mean catchup (s)", "ticks nacked", "SHB busy ms"],
            rows,
        )
        write_result("ablation_pfs", table)
        # Refiltering must request strictly more recovery data: it
        # nacks every tick of the missed span, where the PFS-driven
        # catchup nacks only this subscriber's matching (Q) ticks.
        assert refilter["ticks_nacked"] > 2 * pfs["ticks_nacked"]
