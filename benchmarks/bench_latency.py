"""Result R1: end-to-end latency over a 5-broker chain.

Paper (Section 5, summary result 1): *"The end-to-end event latency for
a 5 hop broker network is 50ms, of which 44ms is due to event logging
at the PHB."*

The bench publishes at a modest rate through PHB → 3 intermediates →
SHB → subscriber and reports the mean/median/p99 end-to-end latency and
the PHB logging component (publish → durable).

``test_traced_latency_histograms`` measures the same regime through the
sampling tracer instead of attribute-smuggled publish times: per-hop
span histograms, p50/p95/p99 end-to-end, and the catchup lag of a
subscriber that reconnects mid-run.  Its JSON export lands in
``benchmarks/results/latency_metrics.json`` (uploaded as a CI artifact)
and :func:`measure_latency_metrics` feeds ``check_baseline.py``.
"""

from conftest import RESULTS_DIR, full_scale, write_result

from repro.metrics.report import format_table
from repro.sim.experiments import run_latency, run_latency_trace

#: Fixed parameters for the traced bench: deterministic, so the
#: baseline comparison in check_baseline.py is exact.
TRACE_KWARGS = dict(
    n_intermediates=3,
    rate_per_s=100.0,
    duration_ms=20_000.0,
    sample_rate=0.25,
    seed=7,
    disconnect_at_ms=6_000.0,
    reconnect_at_ms=10_000.0,
)


def measure_latency_metrics() -> dict:
    """Baseline-gated numbers for check_baseline.py (deterministic)."""
    result = run_latency_trace(**TRACE_KWARGS)
    return {
        "latency_e2e_p50_ms": round(result.e2e_p50_ms, 4),
        "latency_e2e_p99_ms": round(result.e2e_p99_ms, 4),
        "latency_catchup_lag_p99_ms": round(result.catchup_p99_ms, 4),
        "latency_e2e_samples": result.e2e_samples,
        "latency_catchup_samples": result.catchup_samples,
    }


def test_end_to_end_latency(benchmark):
    duration = 60_000.0 if full_scale() else 20_000.0

    result = benchmark.pedantic(
        lambda: run_latency(n_intermediates=3, rate_per_s=50, duration_ms=duration),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["end-to-end mean (ms)", f"{result.mean_ms:.1f}", "50"],
        ["end-to-end p50 (ms)", f"{result.p50_ms:.1f}", "-"],
        ["end-to-end p99 (ms)", f"{result.p99_ms:.1f}", "-"],
        ["PHB logging mean (ms)", f"{result.logging_mean_ms:.1f}", "44"],
        ["hops", result.hops, "5"],
        ["samples", result.samples, "-"],
    ]
    write_result(
        "latency",
        format_table("R1: 5-hop end-to-end latency", ["metric", "measured", "paper"], rows),
    )

    # Shape assertions: logging dominates, total in the right regime.
    assert result.hops == 5
    assert result.logging_mean_ms > 0.75 * result.mean_ms
    assert 35.0 < result.mean_ms < 70.0


def test_traced_latency_histograms(benchmark):
    export_path = RESULTS_DIR / "latency_metrics.json"
    RESULTS_DIR.mkdir(exist_ok=True)

    result = benchmark.pedantic(
        lambda: run_latency_trace(export_path=str(export_path), **TRACE_KWARGS),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["e2e publish→deliver p50 (ms)", f"{result.e2e_p50_ms:.1f}", "~50"],
        ["e2e publish→deliver p95 (ms)", f"{result.e2e_p95_ms:.1f}", "-"],
        ["e2e publish→deliver p99 (ms)", f"{result.e2e_p99_ms:.1f}", "-"],
        ["e2e samples", result.e2e_samples, "-"],
        ["catchup lag p50 (ms)", f"{result.catchup_p50_ms:.1f}", "-"],
        ["catchup lag p99 (ms)", f"{result.catchup_p99_ms:.1f}", "-"],
        ["catchup samples", result.catchup_samples, "-"],
        ["traces started", result.traces_started, "-"],
    ]
    for name, snap in result.span_histograms.items():
        rows.append(
            [f"span {name} p50/p99 (ms)",
             f"{snap['p50_ms']:.3f} / {snap['p99_ms']:.3f}", "-"]
        )
    write_result(
        "latency_trace",
        format_table(
            "R1b: traced 5-hop latency histograms",
            ["metric", "measured", "paper"],
            rows,
        ),
    )

    # Shape assertions mirroring R1: logging dominates end-to-end, the
    # catchup lag reflects the disconnected span, and the sampler saw a
    # plausible fraction (~25%) of the published events.
    log_snap = result.span_histograms["phb.log"]
    assert result.e2e_samples > 100 and result.catchup_samples > 50
    assert log_snap["p50_ms"] > 0.75 * result.e2e_p50_ms
    assert 35.0 < result.e2e_p50_ms < 70.0
    assert result.catchup_p99_ms > 1_000.0  # includes the disconnected span
    assert export_path.exists()
