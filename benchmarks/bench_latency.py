"""Result R1: end-to-end latency over a 5-broker chain.

Paper (Section 5, summary result 1): *"The end-to-end event latency for
a 5 hop broker network is 50ms, of which 44ms is due to event logging
at the PHB."*

The bench publishes at a modest rate through PHB → 3 intermediates →
SHB → subscriber and reports the mean/median/p99 end-to-end latency and
the PHB logging component (publish → durable).
"""

from conftest import full_scale, write_result

from repro.metrics.report import format_table
from repro.sim.experiments import run_latency


def test_end_to_end_latency(benchmark):
    duration = 60_000.0 if full_scale() else 20_000.0

    result = benchmark.pedantic(
        lambda: run_latency(n_intermediates=3, rate_per_s=50, duration_ms=duration),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["end-to-end mean (ms)", f"{result.mean_ms:.1f}", "50"],
        ["end-to-end p50 (ms)", f"{result.p50_ms:.1f}", "-"],
        ["end-to-end p99 (ms)", f"{result.p99_ms:.1f}", "-"],
        ["PHB logging mean (ms)", f"{result.logging_mean_ms:.1f}", "44"],
        ["hops", result.hops, "5"],
        ["samples", result.samples, "-"],
    ]
    write_result(
        "latency",
        format_table("R1: 5-hop end-to-end latency", ["metric", "measured", "paper"], rows),
    )

    # Shape assertions: logging dominates, total in the right regime.
    assert result.hops == 5
    assert result.logging_mean_ms > 0.75 * result.mean_ms
    assert 35.0 < result.mean_ms < 70.0
