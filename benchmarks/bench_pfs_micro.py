"""Section 5.1.2: the PFS microbenchmark (real file I/O).

Paper: *"To compare PFS performance versus logging an event for each
subscriber, at the SHB, we ran a microbenchmark which represented the
preceding no disconnection 1 SHB experiment: 800 events/s input rate,
100 subscribers, 200 events/s per subscriber, 418 byte messages (250
byte payload).  For each subscriber both the PFS and the event log is
synced every 200 events, i.e., every second of the workload, and
maintains information for the last 1000 events, i.e., the last 5
seconds.  The benchmark represents 100s of real time ... The PFS ran
the benchmark in 11088ms.  Compared to event logging for each
subscriber, PFS logged 25x less data, and was over 5x times faster."*

This bench runs on the **real-file** LogVolume backend with real
flush+fsync calls — the bytes and times are measured, not simulated.
Each event matches 25 of the 100 subscribers (the paper's workload
construction), so a PFS record is 8 + 16×25 = 408 bytes against the
baseline's 25 × 418 bytes.
"""

import pathlib
import tempfile
import time

from conftest import full_scale, write_result

from repro.core.events import Event
from repro.metrics.report import format_table
from repro.pfs.baseline import PerSubscriberEventLogs
from repro.pfs.pfs import PersistentFilteringSubsystem
from repro.storage.logvolume import LogVolume

N_SUBS = 100
MATCHES_PER_EVENT = 25          # 200 of 800 ev/s per subscriber
EVENTS_PER_SECOND = 800
SYNC_EVERY = EVENTS_PER_SECOND  # once per workload second
RETAIN_EVENTS = 5 * EVENTS_PER_SECOND
#: Ticks per columnar ``write_batch`` — the constream hands the PFS one
#: append per pump advance; 8 ticks/advance matches the scale-sim pump
#: cadence (800 ev/s at a 10 ms pump).
BATCH_TICKS = 8


def _matching_subs(i):
    """Subscriber s matches event i iff s % 4 == i % 4 (25 of 100)."""
    return [s for s in range(i % 4, N_SUBS, 4)]


def _run_pfs(tmp_path, n_events):
    volume = LogVolume.at_path(str(tmp_path / "pfs.log"), fsync=True)
    pfs = PersistentFilteringSubsystem(volume=volume)
    start = time.perf_counter()
    for i in range(n_events):
        t = (i + 1) * 2
        pfs.write("P1", t, _matching_subs(i))
        if (i + 1) % SYNC_EVERY == 0:
            pfs.flush()
            pfs.chop_below("P1", max(0, (i + 1 - RETAIN_EVENTS)) * 2)
    pfs.flush()
    elapsed = time.perf_counter() - start
    bytes_written = pfs.bytes_written
    volume.close()
    return elapsed, bytes_written


def _run_pfs_batched(tmp_path, n_events):
    """The columnar write path: one append per BATCH_TICKS-tick advance."""
    volume = LogVolume.at_path(str(tmp_path / "pfs_batched.log"), fsync=True)
    pfs = PersistentFilteringSubsystem(volume=volume)
    start = time.perf_counter()
    i = 0
    while i < n_events:
        hi = min(i + BATCH_TICKS, n_events)
        items = [((j + 1) * 2, _matching_subs(j)) for j in range(i, hi)]
        pfs.write_batch("P1", items)
        i = hi
        if i % SYNC_EVERY == 0:
            pfs.flush()
            pfs.chop_below("P1", max(0, (i - RETAIN_EVENTS)) * 2)
    pfs.flush()
    elapsed = time.perf_counter() - start
    bytes_written = pfs.bytes_written
    batch_appends = pfs.batch_appends
    volume.close()
    return elapsed, bytes_written, batch_appends


def measure_pfs_micro_metrics() -> dict:
    """The CI point: columnar batch-append throughput on real file I/O.

    Used by ``check_baseline.py`` — batch appends (pump advances) per
    wall-clock second, so a regression that serializes the batch path
    back into per-tick appends (or bloats the encoder) collapses the
    number and trips the gate.
    """
    n_events = EVENTS_PER_SECOND * 5
    with tempfile.TemporaryDirectory() as d:
        elapsed, _bytes, appends = _run_pfs_batched(pathlib.Path(d), n_events)
    return {"pfs_batch_appends_per_s": round(appends / elapsed, 1)}


def _run_baseline(tmp_path, n_events):
    volume = LogVolume.at_path(str(tmp_path / "subqueues.log"), fsync=True)
    logs = PerSubscriberEventLogs(volume=volume)
    start = time.perf_counter()
    for i in range(n_events):
        t = (i + 1) * 2
        event = Event("P1", t, {"group": i % 4})
        logs.append_event(event, [f"s{s}" for s in _matching_subs(i)])
        if (i + 1) % SYNC_EVERY == 0:
            logs.flush()
            ack_to = max(0, (i + 1 - RETAIN_EVENTS)) * 2
            for s in range(N_SUBS):
                logs.ack_through(f"s{s}", ack_to)
    logs.flush()
    elapsed = time.perf_counter() - start
    bytes_written = logs.bytes_written
    volume.close()
    return elapsed, bytes_written


def test_pfs_vs_per_subscriber_logging(benchmark, tmp_path):
    # 100 s of workload in the paper; 20 s by default here (the ratios
    # are scale-invariant, the full run just writes ~840 MB).
    seconds = 100 if full_scale() else 20
    n_events = EVENTS_PER_SECOND * seconds

    baseline_time, baseline_bytes = _run_baseline(tmp_path, n_events)
    pfs_time, pfs_bytes = benchmark.pedantic(
        lambda: _run_pfs(tmp_path, n_events), rounds=1, iterations=1
    )
    batched_time, batched_bytes, batch_appends = _run_pfs_batched(
        tmp_path, n_events
    )

    data_ratio = baseline_bytes / pfs_bytes
    speedup = baseline_time / pfs_time
    rows = [
        ["events", n_events, 80_000],
        ["PFS bytes", f"{pfs_bytes:,}", "-"],
        ["baseline bytes", f"{baseline_bytes:,}", "-"],
        ["data ratio (baseline/PFS)", f"{data_ratio:.1f}x", "25x"],
        ["PFS wall time (ms)", f"{pfs_time * 1000:.0f}",
         "11088 (for 100s run)"],
        ["baseline wall time (ms)", f"{baseline_time * 1000:.0f}", "-"],
        ["speedup (baseline/PFS)", f"{speedup:.1f}x", ">5x"],
        ["columnar PFS wall time (ms)", f"{batched_time * 1000:.0f}", "-"],
        ["columnar batch appends", f"{batch_appends:,}", "-"],
        ["columnar appends/s", f"{batch_appends / batched_time:,.0f}", "-"],
    ]
    write_result(
        "pfs_micro",
        format_table("Section 5.1.2: PFS microbenchmark (real file I/O)",
                     ["metric", "measured", "paper"], rows),
    )

    # The paper's two claims.
    assert 23.0 < data_ratio < 28.0          # 418*25 / 408 = 25.6
    assert speedup > 5.0
    # The columnar representation is logical-bytes-identical (the
    # footnote-2 accounting is representation-independent) and does not
    # give back the row path's speed (BATCH_TICKS fewer physical
    # appends; 1.1 headroom absorbs I/O jitter).
    assert batched_bytes == pfs_bytes
    assert batch_appends * BATCH_TICKS >= n_events
    assert batched_time < pfs_time * 1.1
