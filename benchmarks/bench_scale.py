#!/usr/bin/env python3
"""Scale bench: 10^4..10^5 durable subscribers on a wide/deep forest.

Not a paper figure — the regime the paper's production deployments
(Summit, with "tens of thousands" of durable clients) imply.  Each
point builds a multi-PHB forest with redundant-path spares via
:func:`repro.sim.experiments.prepare_scale`, registers N durable
subscriptions (headless — a disconnected durable subscription still
costs its registry row, matching work and PFS records, which is the
state under test) plus a handful of live clients, then drives a
publish window and reports:

* ``matched_pairs_per_wall_s`` — durable fan-out throughput: (event,
  subscriber) pairs PFS-logged per wall-clock second, recovered from
  the record format itself (8 + 16n bytes);
* ``bytes_per_subscriber`` — tracemalloc'd memory of the built point
  divided by N (the whole forest amortized over its subscribers);
* a representation comparison: the current registry + sharded-index
  representation vs an emulation of the pre-diet one (dict-based rows,
  one private predicate instance per row, flat PFS index) — the
  ``representation_ratio`` is the headline "bytes/subscriber dropped
  Nx" number.

Usage:
    PYTHONPATH=src python benchmarks/bench_scale.py                  # 10k point
    PYTHONPATH=src python benchmarks/bench_scale.py --points 10000,50000,100000
    PYTHONPATH=src python benchmarks/bench_scale.py --out scale_metrics.json --min-ratio 2.0

``check_baseline.py`` gates ``scale_sim_events_per_wall_s_100k`` (the
100k point, run untraced so tracemalloc overhead doesn't pollute the
wall clock) and ``scale_bytes_per_subscriber`` (the representation
measurement, allocator-deterministic for a given Python build).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.sim.experiments import drive_scale, prepare_scale, run_scale

REPRESENTATION_SUBS = 10_000
REPRESENTATION_GROUPS = 500


def measure_representation(
    n_subscribers: int = REPRESENTATION_SUBS,
    n_groups: int = REPRESENTATION_GROUPS,
) -> dict:
    """Per-subscriber registry/index memory: current vs pre-diet layout.

    Both sides build the same logical state — N durable subscriptions
    over ``n_groups`` distinct predicates, each acked once, each with a
    live PFS last-index entry — so the difference is purely the
    representation: ``__slots__`` rows + interned ids/predicates +
    sharded index vs ``__dict__`` rows + one private predicate copy per
    row + a flat index dict.
    """
    from repro.core.subscription import SubscriptionRegistry
    from repro.matching.predicates import In
    from repro.net.simtime import Scheduler
    from repro.pfs.pfs import _ShardedIndex
    from repro.storage.disk import SimDisk
    from repro.storage.table import PersistentTable

    def build_current():
        sim = Scheduler()
        disk = SimDisk(sim, "bench-rep-store")
        registry = SubscriptionRegistry(
            PersistentTable("bench-rep.subs", disk),
            PersistentTable("bench-rep.released", disk),
        )
        predicates = [In("group", (g,)) for g in range(n_groups)]
        index = _ShardedIndex()
        for i in range(n_subscribers):
            sub = registry.create(
                f"rep-c{i}", predicates[i % n_groups], pfs_from={"p1": 0}
            )
            registry.ack(sub.sub_id, "p1", 0)
            index[sub.num] = 8 + 24 * i
        return registry, index

    def build_legacy():
        # The pre-diet representation, emulated structure for structure:
        # rows with a per-instance __dict__, a private (non-interned)
        # predicate object per row, dirty table rows, a flat
        # {num: last_index} dict.  Using today's (slotted) predicate
        # classes inside it *understates* the legacy cost, so the
        # resulting ratio is conservative.
        class LegacyRow:
            def __init__(self, sub_id, num, predicate, pfs_from):
                self.sub_id = sub_id
                self.num = num
                self.predicate = predicate
                self.released = {}
                self.pfs_from = pfs_from
                self.connected = False

        subs = {}
        by_num = {}
        subs_table = {}
        released_table = {}
        index = {}
        for i in range(n_subscribers):
            row = LegacyRow(f"rep-l{i}", i, In("group", (i % n_groups,)), {"p1": 0})
            row.released["p1"] = 0
            subs[row.sub_id] = row
            by_num[i] = row
            subs_table[row.sub_id] = (row.num, row.predicate, dict(row.pfs_from))
            released_table[f"{row.sub_id}/p1"] = 0
            index[i] = 8 + 24 * i
        return subs, by_num, subs_table, released_table, index

    def traced_bytes(build) -> int:
        tracemalloc.start()
        keep = build()
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del keep
        return current

    current_bytes = traced_bytes(build_current)
    legacy_bytes = traced_bytes(build_legacy)
    return {
        "n_subscribers": n_subscribers,
        "n_groups": n_groups,
        "current_bytes_per_subscriber": round(current_bytes / n_subscribers, 1),
        "legacy_bytes_per_subscriber": round(legacy_bytes / n_subscribers, 1),
        "representation_ratio": round(legacy_bytes / current_bytes, 2),
    }


def measure_scale_point(n_subscribers: int, trace: bool = True, **kwargs) -> dict:
    """Build and drive one scale point; tracemalloc the build when asked.

    With ``trace`` the report includes the built point's memory and the
    run's peak; tracing slows the simulation, so wall-clock throughput
    from a traced run is informational — the gated number comes from an
    untraced run (see :func:`measure_scale_metrics`).
    """
    if trace:
        tracemalloc.start()
    t0 = time.perf_counter()
    setup = prepare_scale(n_subscribers, **kwargs)
    build_wall_s = time.perf_counter() - t0
    build_bytes = peak_bytes = 0
    if trace:
        build_bytes, _ = tracemalloc.get_traced_memory()
    result = drive_scale(setup)
    if trace:
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    report = {
        "n_subscribers": result.n_subscribers,
        "n_trees": result.n_trees,
        "n_intermediates": result.n_intermediates,
        "n_shbs": result.n_shbs,
        "connected_clients": result.connected_clients,
        "events_published": result.events_published,
        "pfs_records": result.pfs_records,
        "matched_pairs": result.matched_pairs,
        "client_events": result.client_events,
        "build_wall_s": round(build_wall_s, 2),
        "drive_wall_s": round(result.drive_wall_s, 2),
        "matched_pairs_per_wall_s": round(result.matched_pairs_per_wall_s, 0),
        "traced": trace,
    }
    if trace:
        report["build_bytes"] = build_bytes
        report["bytes_per_subscriber"] = round(build_bytes / n_subscribers, 1)
        report["peak_bytes"] = peak_bytes
    return report


def measure_scale_metrics() -> dict:
    """The two scale metrics check_baseline.py gates.

    The 100k throughput point runs untraced with a trimmed publish
    window (throughput is a rate; the shorter window changes how well
    fixed timer overhead amortizes, which the loose wall-clock
    tolerance absorbs).  The bytes metric uses the representation
    measurement, which is deterministic for a given Python build.
    """
    rep = measure_representation()
    result = run_scale(100_000, events_per_pubend=400)
    if result.matched_pairs <= 0 or result.client_events <= 0:
        print("FATAL: scale point delivered nothing "
              f"(pairs={result.matched_pairs}, client_events={result.client_events})",
              file=sys.stderr)
        sys.exit(2)
    return {
        "scale_sim_events_per_wall_s_100k": round(result.matched_pairs_per_wall_s, 0),
        "scale_bytes_per_subscriber": rep["current_bytes_per_subscriber"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--points", default="10000",
                        help="comma-separated subscriber counts (default 10000)")
    parser.add_argument("--out", default=None,
                        help="write the full report as JSON to this path")
    parser.add_argument("--min-ratio", type=float, default=0.0,
                        help="fail unless legacy/current bytes-per-subscriber "
                             "ratio is at least this (CI passes 2.0)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip tracemalloc (pure throughput runs)")
    args = parser.parse_args(argv)

    points = [int(p) for p in args.points.split(",") if p]
    representation = measure_representation()
    print(f"representation @ {representation['n_subscribers']} subs: "
          f"{representation['current_bytes_per_subscriber']:.0f} B/sub now vs "
          f"{representation['legacy_bytes_per_subscriber']:.0f} B/sub pre-diet "
          f"({representation['representation_ratio']:.2f}x)")
    reports = []
    for n in points:
        report = measure_scale_point(n, trace=not args.no_trace)
        reports.append(report)
        line = (f"{n:>7} subs | {report['n_shbs']:>3} SHBs | "
                f"{report['matched_pairs']:>8} pairs | "
                f"build {report['build_wall_s']:6.2f}s | "
                f"drive {report['drive_wall_s']:6.2f}s | "
                f"{report['matched_pairs_per_wall_s']:>8.0f} pairs/wall-s")
        if "bytes_per_subscriber" in report:
            line += f" | {report['bytes_per_subscriber']:7.1f} B/sub built"
        print(line)
        if report["matched_pairs"] <= 0 or report["client_events"] <= 0:
            print(f"FATAL: {n}-sub point delivered nothing", file=sys.stderr)
            return 2
    if args.out:
        payload = {"representation": representation, "points": reports}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.min_ratio and representation["representation_ratio"] < args.min_ratio:
        print(f"FATAL: representation ratio "
              f"{representation['representation_ratio']:.2f}x below required "
              f"{args.min_ratio:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
