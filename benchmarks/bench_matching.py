"""Matcher microbenchmark: counting engine vs the pre-PR engine.

The matching engine is the per-event CPU floor at every broker role:
the PHB and each intermediate ask ``matches_any`` per downstream link,
and the SHB constream computes the full match set per event.  This
bench pits the counting-based engine against a verbatim copy of the
pre-PR engine (single-attribute equality index + linear scan bucket)
on the workloads the ISSUE names:

* single-attribute membership subscriptions (``In("group", ...)``) —
  the old engine's best case, where the new one must not regress;
* multi-attribute conjunctions (region AND category AND price band) —
  the common content-based form, where the old engine degrades to
  evaluating every region-sharing subscription's whole predicate tree;

each at 1 000, 5 000 and 10 000 subscriptions, plus a PHB-style
fan-out filtering experiment measuring per-subscription work items
behind ``matches_any`` with and without per-link aggregation.

Every workload first verifies the two engines produce *identical*
match sets event for event — the transcript-equivalence claim at the
matching layer — before any timing runs.
"""

from __future__ import annotations

import random
import time
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from conftest import full_scale, write_result

from repro.matching.engine import MatchingEngine
from repro.matching.predicates import And, Between, Eq, In, Predicate
from repro.metrics.report import format_table


class LegacyMatchingEngine:
    """The pre-PR engine, verbatim: equality index + scan bucket.

    Kept here (not in ``src``) purely as the bench baseline, with one
    addition — ``predicate_evals`` counts ``Predicate.matches`` calls,
    the unit the counting matcher is designed to eliminate.
    """

    def __init__(self) -> None:
        self._filters: Dict[str, Predicate] = {}
        self._index: Dict[str, Dict[Any, Set[str]]] = defaultdict(lambda: defaultdict(set))
        self._index_keys: Dict[str, Tuple[str, FrozenSet[Any]]] = {}
        self._scan: Set[str] = set()
        self.predicate_evals = 0

    def add(self, sub_id: str, predicate: Predicate) -> None:
        if sub_id in self._filters:
            self.remove(sub_id)
        self._filters[sub_id] = predicate
        key = predicate.indexable_equalities()
        if key is None:
            self._scan.add(sub_id)
        else:
            attr, values = key
            self._index_keys[sub_id] = (attr, values)
            for value in values:
                self._index[attr][value].add(sub_id)

    def remove(self, sub_id: str) -> None:
        predicate = self._filters.pop(sub_id, None)
        if predicate is None:
            return
        self._scan.discard(sub_id)
        key = self._index_keys.pop(sub_id, None)
        if key is not None:
            attr, values = key
            for value in values:
                bucket = self._index[attr].get(value)
                if bucket is not None:
                    bucket.discard(sub_id)
                    if not bucket:
                        del self._index[attr][value]

    def _candidates(self, attributes: Mapping[str, Any]) -> Iterable[str]:
        for attr, buckets in self._index.items():
            value = attributes.get(attr)
            if value is not None:
                hits = buckets.get(value)
                if hits:
                    yield from hits
        yield from self._scan

    def match(self, attributes: Mapping[str, Any]) -> Set[str]:
        out: Set[str] = set()
        for sub_id in self._candidates(attributes):
            if sub_id not in out:
                self.predicate_evals += 1
                if self._filters[sub_id].matches(attributes):
                    out.add(sub_id)
        return out

    def matches_any(self, attributes: Mapping[str, Any]) -> bool:
        seen: Set[str] = set()
        for sub_id in self._candidates(attributes):
            if sub_id in seen:
                continue
            seen.add(sub_id)
            self.predicate_evals += 1
            if self._filters[sub_id].matches(attributes):
                return True
        return False


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------
N_GROUPS = 16
N_REGIONS = 8
N_CATEGORIES = 12
PRICE_BANDS = [(lo, lo + 14) for lo in range(0, 100, 5)]


def single_attr_subs(n: int, rng: random.Random) -> List[Tuple[str, Predicate]]:
    """``In("group", {g1, g2})`` — the seed workload's subscription form."""
    return [
        (
            f"s{i}",
            In("group", rng.sample(range(N_GROUPS), 2)),
        )
        for i in range(n)
    ]


def multi_attr_subs(n: int, rng: random.Random) -> List[Tuple[str, Predicate]]:
    """Region AND category AND price-band conjunctions."""
    out = []
    for i in range(n):
        lo, hi = rng.choice(PRICE_BANDS)
        out.append(
            (
                f"s{i}",
                And(
                    [
                        Eq("region", rng.randrange(N_REGIONS)),
                        Eq("category", rng.randrange(N_CATEGORIES)),
                        Between("price", lo, hi),
                    ]
                ),
            )
        )
    return out


def make_events(n: int, rng: random.Random) -> List[Dict[str, Any]]:
    return [
        {
            "group": rng.randrange(N_GROUPS),
            "region": rng.randrange(N_REGIONS),
            "category": rng.randrange(N_CATEGORIES),
            "price": rng.randrange(100),
        }
        for i in range(n)
    ]


def _events_per_sec(engine, events: List[Dict[str, Any]]) -> float:
    start = time.perf_counter()
    for attributes in events:
        engine.match(attributes)
    elapsed = time.perf_counter() - start
    return len(events) / elapsed if elapsed > 0 else float("inf")


def _events_per_sec_batch(engine, events: List[Dict[str, Any]], batch_size: int) -> float:
    start = time.perf_counter()
    for i in range(0, len(events), batch_size):
        engine.match_batch(events[i : i + batch_size])
    elapsed = time.perf_counter() - start
    return len(events) / elapsed if elapsed > 0 else float("inf")


def _build(engine_cls, subs):
    engine = engine_cls()
    for sub_id, predicate in subs:
        engine.add(sub_id, predicate)
    return engine


def _verify_identical(subs, events) -> None:
    """Both engines must produce the same match set for every event."""
    legacy = _build(LegacyMatchingEngine, subs)
    counting = _build(MatchingEngine, subs)
    for attributes in events:
        expect = legacy.match(attributes)
        assert counting.match(attributes) == expect
        assert counting.matches_any(attributes) == bool(expect)


def run_matching_workload(kind: str, n_subs: int, n_events: int, seed: int = 7) -> dict:
    """Measure both engines on one workload; returns the comparison."""
    rng = random.Random(seed)
    subs = single_attr_subs(n_subs, rng) if kind == "single" else multi_attr_subs(n_subs, rng)
    events = make_events(n_events, rng)
    _verify_identical(subs, events[: min(200, n_events)])

    legacy = _build(LegacyMatchingEngine, subs)
    counting = _build(MatchingEngine, subs)
    # Warm both (index lazy-sorts, caches) outside the timed region.
    for attributes in events[:10]:
        legacy.match(attributes)
        counting.match(attributes)
    legacy_eps = _events_per_sec(legacy, events)
    counting_eps = _events_per_sec(counting, events)
    return {
        "kind": kind,
        "n_subs": n_subs,
        "legacy_eps": legacy_eps,
        "counting_eps": counting_eps,
        "speedup": counting_eps / legacy_eps,
    }


def run_batch_workload(
    kind: str, n_subs: int, n_events: int, batch_size: int = 64, seed: int = 7
) -> dict:
    """Batch-oriented matching vs the single-event counting path.

    Both sides run the *same* counting engine; the comparison isolates
    what ``match_batch``'s probe cache and signature memo buy over
    per-event ``match`` calls — the tentpole's ≥3x gate on the
    multi-predicate 10k-subscription workload.  Equivalence is asserted
    on a prefix before any timing.
    """
    rng = random.Random(seed)
    subs = single_attr_subs(n_subs, rng) if kind == "single" else multi_attr_subs(n_subs, rng)
    events = make_events(n_events, rng)
    engine = _build(MatchingEngine, subs)
    head = events[: min(200, n_events)]
    for i in range(0, len(head), batch_size):
        chunk = head[i : i + batch_size]
        assert engine.match_batch(chunk) == [engine.match(a) for a in chunk]

    # Warm both paths outside the timed region: lazy index sorts for
    # the single path, probe cache + signature memo for the batch path
    # (one full pass, so the timed region measures the steady state a
    # long-running broker sits in — the caches persist until the next
    # subscription change).
    for attributes in events[:10]:
        engine.match(attributes)
    engine.match_batch(events)
    single_eps = _events_per_sec(engine, events)
    batch_eps = _events_per_sec_batch(engine, events, batch_size)
    return {
        "kind": kind,
        "n_subs": n_subs,
        "batch_size": batch_size,
        "single_eps": single_eps,
        "batch_eps": batch_eps,
        "speedup": batch_eps / single_eps,
        "sig_memo_hits": engine.sig_memo_hits,
        "probe_cache_hits": engine.probe_cache_hits,
    }


def run_fanout_filtering(
    n_children: int = 4, subs_per_child: int = 2000, n_events: int = 2000, seed: int = 11
) -> dict:
    """PHB-style fan-out: one engine per downstream link, ``matches_any``
    per event per link.  Subscribers draw from a shared predicate pool
    (many subscribers want the same content), which is exactly what the
    per-link aggregate's signature dedup + covering exploits.

    Work is compared in per-subscription units: the legacy engine's
    ``Predicate.matches`` calls vs the aggregate's touched signature
    counts plus residual evaluations.
    """
    rng = random.Random(seed)
    pool = multi_attr_subs(200, rng)  # shared pool of distinct predicates
    events = make_events(n_events, rng)

    legacy_evals = 0
    aggregate_evals = 0
    active_total = 0
    subs_total = 0
    for child in range(n_children):
        subs = [
            (f"c{child}-s{i}", rng.choice(pool)[1]) for i in range(subs_per_child)
        ]
        legacy = _build(LegacyMatchingEngine, subs)
        counting = _build(MatchingEngine, subs)
        for attributes in events:
            expect = legacy.matches_any(attributes)
            assert counting.matches_any(attributes) == expect
        legacy_evals += legacy.predicate_evals
        agg = counting._aggregate.matcher
        aggregate_evals += agg.candidates_seen + agg.residual_evals
        active_total += counting.aggregate_active
        subs_total += len(counting)
    return {
        "n_links": n_children,
        "subs_total": subs_total,
        "active_signatures": active_total,
        "legacy_predicate_evals": legacy_evals,
        "aggregate_evals": aggregate_evals,
        "eval_reduction": legacy_evals / max(1, aggregate_evals),
    }


def measure_baseline_metrics() -> dict:
    """The headline numbers gated by check_baseline.py.

    Wall-clock rates vary with the host; the ratios (speedup, eval
    reduction, active signatures) are what CI holds tightly.
    """
    n_events = 2000
    rows = {}
    for kind in ("single", "multi"):
        for n_subs in (1000, 10_000):
            r = run_matching_workload(kind, n_subs, n_events)
            rows[f"matcher_eps_{kind}_{n_subs}"] = round(r["counting_eps"], 0)
            rows[f"matcher_speedup_{kind}_{n_subs}"] = round(r["speedup"], 2)
    fan = run_fanout_filtering()
    rows["matcher_eval_reduction_fanout"] = round(fan["eval_reduction"], 2)
    rows["matcher_active_signatures_fanout"] = fan["active_signatures"]
    batch = run_batch_workload("multi", 10_000, n_events)
    rows["matcher_batch_eps_multi_10000"] = round(batch["batch_eps"], 0)
    rows["matcher_batch_speedup_multi_10000"] = round(batch["speedup"], 2)
    return rows


# ---------------------------------------------------------------------------
# The pytest bench
# ---------------------------------------------------------------------------
def test_counting_matcher_vs_legacy():
    n_events = 10_000 if full_scale() else 3000
    results = [
        run_matching_workload(kind, n_subs, n_events)
        for kind in ("single", "multi")
        for n_subs in (1000, 5000, 10_000)
    ]
    fan = run_fanout_filtering()

    rows = [
        [
            f"{r['kind']}/{r['n_subs']}",
            f"{r['legacy_eps']:,.0f}",
            f"{r['counting_eps']:,.0f}",
            f"{r['speedup']:.1f}x",
        ]
        for r in results
    ]
    rows.append(
        [
            f"fanout matches_any ({fan['n_links']} links x "
            f"{fan['subs_total'] // fan['n_links']} subs)",
            f"{fan['legacy_predicate_evals']:,} evals",
            f"{fan['aggregate_evals']:,} evals "
            f"({fan['active_signatures']} active sigs)",
            f"{fan['eval_reduction']:.1f}x fewer",
        ]
    )
    write_result(
        "matching",
        format_table(
            "Counting matcher vs pre-PR engine (events/sec through match())",
            ["workload", "legacy", "counting", "speedup"],
            rows,
        ),
    )

    by_key = {(r["kind"], r["n_subs"]): r for r in results}
    # Acceptance: >=5x on the 5k multi-attribute conjunctive workload.
    assert by_key[("multi", 5000)]["speedup"] >= 5.0
    # The old engine's best case must not regress below parity-ish.
    assert by_key[("single", 1000)]["speedup"] >= 0.5
    # Acceptance: >=10x fewer per-subscription work items at intermediates.
    assert fan["eval_reduction"] >= 10.0


def test_batch_matching_vs_single_event():
    """The batch path's amortization gate: ≥3x over single-event
    counting on the multi-predicate 10k-subscription workload."""
    n_events = 10_000 if full_scale() else 3000
    results = [
        run_batch_workload(kind, n_subs, n_events)
        for kind in ("single", "multi")
        for n_subs in (1000, 10_000)
    ]
    rows = [
        [
            f"{r['kind']}/{r['n_subs']} (batch={r['batch_size']})",
            f"{r['single_eps']:,.0f}",
            f"{r['batch_eps']:,.0f}",
            f"{r['speedup']:.1f}x",
        ]
        for r in results
    ]
    write_result(
        "matching_batch",
        format_table(
            "Batch matching vs single-event counting (events/sec)",
            ["workload", "single", "batch", "speedup"],
            rows,
        ),
    )
    by_key = {(r["kind"], r["n_subs"]): r for r in results}
    headline = by_key[("multi", 10_000)]
    # Tentpole gate: the batch path must amortize the counting loop on
    # the workload where it dominates.
    assert headline["speedup"] >= 3.0
    # The amortization must actually come from the caches, not noise.
    assert headline["sig_memo_hits"] > 0
    assert headline["probe_cache_hits"] > 0
    # The cheap workloads must never get *slower* in batch form.
    assert by_key[("single", 1000)]["speedup"] >= 0.8
