"""Figure 4: peak event rate vs number of SHBs, with and without churn.

Paper: *"It scales almost linearly from 20K events/s for 1 SHB to
79.2K events/s for 4 SHBs [no churn] ... from 17.6K events/s to 69.6K
events/s (an increase from 88 subscribers to 348 subscribers) [with
churn] ... The CPU idle time at the PHB decreases slightly from 69% to
59% when going from 1 SHB to 4 SHBs."* The 1-broker network is run to
show its capacity matches the 1-SHB network.

Workload: 800 ev/s input over 4 pubends, 200 ev/s per subscriber; with
churn each subscriber periodically disconnects (time-compressed by
default, same down/period ratio as the paper's 5s/300s).
"""

import time

import pytest
from conftest import full_scale, write_result

from repro.metrics.report import format_table
from repro.sim.experiments import drive_scalability, prepare_scalability

# Paper subscriber counts: 100/SHB without churn, 87/SHB (348/4) with.
NO_CHURN_SUBS = 100
CHURN_SUBS = 87
PAPER_NO_CHURN = {1: 20_000, 2: 40_000, 4: 79_200}
PAPER_CHURN = {1: 17_600, 2: 35_000, 4: 69_600}

_results = {}


def measure_scalability_metrics() -> dict:
    """End-to-end simulator throughput, gated by check_baseline.py.

    Runs the 1-SHB no-churn scenario at smoke duration and reports
    delivered *simulated* events per *wall-clock* second — the "how
    fast can the host push the whole pipeline" figure that the
    batch-matching and kernel-overhead work moves.  The simulated-side
    numbers (efficiency) are deterministic; the wall-clock rate swings
    with host load, so check_baseline holds it loosely.
    """
    duration_ms, warmup_ms = 10_000.0, 2_000.0
    # Workload construction (brokers, links, 100 clients) stays outside
    # the timed region: the metric is simulator throughput, not setup.
    setup = prepare_scalability(
        n_shbs=1,
        subs_per_shb=NO_CHURN_SUBS,
        churn=False,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
    )
    start = time.perf_counter()
    result = drive_scalability(setup)
    wall_s = time.perf_counter() - start
    delivered = result.achieved_rate * (duration_ms - warmup_ms) / 1000.0
    return {
        "scalability_sim_events_per_wall_s": round(delivered / wall_s, 0),
        "scalability_efficiency_smoke": round(result.efficiency, 4),
    }


def _prepare(n_shbs, churn, single_broker=False):
    duration = 60_000.0 if full_scale() else 14_000.0
    churn_kwargs = {}
    if full_scale():
        churn_kwargs = {"churn_period_ms": 300_000.0, "churn_down_ms": 5_000.0}
    else:
        churn_kwargs = {"churn_period_ms": 60_000.0, "churn_down_ms": 1_000.0}
    return prepare_scalability(
        n_shbs=n_shbs,
        subs_per_shb=CHURN_SUBS if churn else NO_CHURN_SUBS,
        churn=churn,
        duration_ms=duration,
        warmup_ms=4_000.0,
        single_broker=single_broker,
        **churn_kwargs,
    )


@pytest.mark.parametrize("n_shbs", [1, 2, 4])
def test_scalability_no_churn(benchmark, n_shbs):
    # pedantic's setup hook keeps workload construction untimed; the
    # benchmarked callable is the simulation drive alone.
    result = benchmark.pedantic(
        drive_scalability,
        setup=lambda: ((_prepare(n_shbs, churn=False),), {}),
        rounds=1, iterations=1,
    )
    _results[("no_churn", n_shbs)] = result
    assert result.efficiency > 0.95
    # Linear scaling: each SHB adds its full share.
    assert result.achieved_rate == pytest.approx(
        n_shbs * 200.0 * NO_CHURN_SUBS, rel=0.05
    )
    _maybe_report()


@pytest.mark.parametrize("n_shbs", [1, 2, 4])
def test_scalability_with_churn(benchmark, n_shbs):
    result = benchmark.pedantic(
        drive_scalability,
        setup=lambda: ((_prepare(n_shbs, churn=True),), {}),
        rounds=1, iterations=1,
    )
    _results[("churn", n_shbs)] = result
    assert result.disconnects > 0
    assert result.catchup_count > 0
    assert result.efficiency > 0.90
    _maybe_report()


def test_scalability_batched_delivery(benchmark):
    """Throughput with a 10 ms batch window matches unbatched delivery.

    Batching trades per-message scheduling for per-batch scheduling; it
    must not change how many events subscribers receive.
    """
    duration = 60_000.0 if full_scale() else 14_000.0
    result = benchmark.pedantic(
        drive_scalability,
        setup=lambda: ((prepare_scalability(
            n_shbs=1,
            subs_per_shb=NO_CHURN_SUBS,
            churn=False,
            duration_ms=duration,
            warmup_ms=4_000.0,
            batch_window_ms=10.0,
        ),), {}),
        rounds=1,
        iterations=1,
    )
    assert result.efficiency > 0.95
    assert result.achieved_rate == pytest.approx(200.0 * NO_CHURN_SUBS, rel=0.05)


def test_single_broker_matches_one_shb(benchmark):
    """The 1-broker network has ~the capacity of the 1-SHB network."""
    result = benchmark.pedantic(
        drive_scalability,
        setup=lambda: ((_prepare(1, churn=False, single_broker=True),), {}),
        rounds=1, iterations=1,
    )
    _results[("single", 1)] = result
    assert result.efficiency > 0.95
    _maybe_report()


def _maybe_report():
    needed = (
        [("no_churn", n) for n in (1, 2, 4)]
        + [("churn", n) for n in (1, 2, 4)]
        + [("single", 1)]
    )
    if not all(k in _results for k in needed):
        return
    rows = []
    for n in (1, 2, 4):
        r = _results[("no_churn", n)]
        rows.append([f"{n} SHB, no churn", r.subscribers, f"{r.achieved_rate:,.0f}",
                     f"{PAPER_NO_CHURN[n]:,}", f"{r.phb_idle:.0%}", f"{r.shb_idle_mean:.0%}"])
    for n in (1, 2, 4):
        r = _results[("churn", n)]
        rows.append([f"{n} SHB, churn", r.subscribers, f"{r.achieved_rate:,.0f}",
                     f"{PAPER_CHURN[n]:,}", f"{r.phb_idle:.0%}", f"{r.shb_idle_mean:.0%}"])
    s = _results[("single", 1)]
    rows.append(["1 broker (combined)", s.subscribers, f"{s.achieved_rate:,.0f}",
                 "~20,000", f"{s.phb_idle:.0%}", f"{s.shb_idle_mean:.0%}"])

    churn_ratio = (
        _results[("churn", 4)].achieved_rate / _results[("no_churn", 4)].achieved_rate
    )
    table = format_table(
        "Figure 4: aggregate subscriber rate (events/s)",
        ["configuration", "subs", "measured", "paper", "PHB idle", "SHB idle"],
        rows,
    )
    table += (
        f"\n\nchurn/no-churn rate ratio at 4 SHBs: {churn_ratio:.0%} (paper: 88%)"
        f"\nPHB idle trend 1->4 SHBs: "
        f"{_results[('no_churn', 1)].phb_idle:.0%} -> "
        f"{_results[('no_churn', 4)].phb_idle:.0%} (paper: 69% -> 59%)"
    )
    write_result("scalability", table)
