"""Figure 5: catchup durations under steady disconnect/reconnect churn.

Paper: *"Catchup durations are usually between 5 and 6 seconds"* for
subscribers that disconnect for 5 s (missing 1000 events) in the
2-broker topology at the churn workload's load level.

The figure's shape: catchup duration is of the same order as the
disconnection itself (recovering N missed events plus the events that
keep arriving while catching up), tightly clustered across subscribers.
We report the duration distribution and its ratio to the disconnection
length; at default (time-compressed) scale subscribers miss 200 events
in 1 s, at REPRO_BENCH_SCALE=full the paper's 5 s / 1000 events.
"""

from conftest import full_scale, write_result

from repro.metrics.report import format_table, percentile
from repro.sim.experiments import run_stream_rates


def test_catchup_durations(benchmark):
    if full_scale():
        kwargs = dict(duration_ms=250_000.0, churn_period_ms=300_000.0,
                      churn_down_ms=5_000.0, subs=88)
    else:
        kwargs = dict(duration_ms=60_000.0, churn_period_ms=30_000.0,
                      churn_down_ms=1_000.0, subs=88)

    result = benchmark.pedantic(
        lambda: run_stream_rates(**kwargs), rounds=1, iterations=1
    )
    durations = result.catchup_durations_ms
    assert durations, "no catchups completed"
    down_ms = kwargs["churn_down_ms"]
    mean = sum(durations) / len(durations)
    rows = [
        ["catchups completed", len(durations), "-"],
        ["disconnection length (s)", f"{down_ms / 1000:.1f}", "5.0"],
        ["catchup mean (s)", f"{mean / 1000:.2f}", "5-6"],
        ["catchup p10 (s)", f"{percentile(durations, 10) / 1000:.2f}", "-"],
        ["catchup p90 (s)", f"{percentile(durations, 90) / 1000:.2f}", "-"],
        ["mean / disconnection ratio", f"{mean / down_ms:.2f}", "1.0-1.2"],
    ]
    write_result(
        "catchup",
        format_table("Figure 5: catchup durations", ["metric", "measured", "paper"], rows),
    )

    # Shape: same order as the disconnection, bounded spread.
    assert 0.1 * down_ms < mean < 4.0 * down_ms
    assert percentile(durations, 90) < 8.0 * down_ms
