#!/usr/bin/env python3
"""Smoke benchmark with a checked-in regression baseline.

Runs the message-amplification experiment (the batching tentpole's
headline number) at a short duration and compares the result against
``benchmarks/baseline.json``.  The simulation is deterministic, so the
measured values are exactly reproducible; the 20% tolerance exists so
benign parameter drift (e.g. retuned cost models) doesn't block CI,
while a real batching regression — more link transmissions per event,
smaller batches, or lost deliveries — does.

Usage:
    python benchmarks/check_baseline.py            # compare, exit 1 on regression
    python benchmarks/check_baseline.py --update   # rewrite the baseline
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))  # for bench_matching

from repro.sim.experiments import run_message_amplification

from bench_latency import measure_latency_metrics
from bench_matching import measure_baseline_metrics as measure_matching_metrics
from bench_pfs_micro import measure_pfs_micro_metrics
from bench_scalability import measure_scalability_metrics
from bench_scale import measure_scale_metrics

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"
TOLERANCE = 0.20
DURATION_MS = 6_000.0

#: metric name -> direction in which the value getting *larger* is bad.
HIGHER_IS_WORSE = {
    "messages_per_event_window0": True,
    "messages_per_event_window10": True,
    "reduction": False,
    "mean_batch_size_window10": False,
    "events_delivered": False,
    # Counting-matcher headline numbers (benchmarks/bench_matching.py):
    # events/sec and speedup-vs-legacy per workload, plus the fan-out
    # aggregation's per-subscription work reduction.
    "matcher_eps_single_1000": False,
    "matcher_eps_single_10000": False,
    "matcher_eps_multi_1000": False,
    "matcher_eps_multi_10000": False,
    "matcher_speedup_single_1000": False,
    "matcher_speedup_single_10000": False,
    "matcher_speedup_multi_1000": False,
    "matcher_speedup_multi_10000": False,
    "matcher_eval_reduction_fanout": False,
    "matcher_active_signatures_fanout": True,
    # Batch-oriented matching (the ≥3x tentpole gate lives in
    # bench_matching.test_batch_matching_vs_single_event; these hold
    # the measured level so a silent de-amortization regresses CI):
    "matcher_batch_eps_multi_10000": False,
    "matcher_batch_speedup_multi_10000": False,
    # End-to-end simulator throughput (bench_scalability): delivered
    # simulated events per wall-clock second, plus the deterministic
    # delivery efficiency of the same smoke run.
    "scalability_sim_events_per_wall_s": False,
    "scalability_efficiency_smoke": False,
    # Scale bench (benchmarks/bench_scale.py): durable fan-out
    # throughput at 10^5 subscribers on the deep forest (wall-clock,
    # held loosely) and the per-subscriber registry/index memory
    # (tracemalloc, deterministic per Python build).
    "scale_sim_events_per_wall_s_100k": False,
    "scale_bytes_per_subscriber": True,
    # Columnar PFS write path (benchmarks/bench_pfs_micro.py): batch
    # appends (pump advances) per wall-clock second on real file I/O —
    # gates the representation collapsing back to per-tick appends.
    "pfs_batch_appends_per_s": False,
    # Traced latency histograms (benchmarks/bench_latency.py): p50/p99
    # publish→deliver and the reconnect catchup lag, simulated time, so
    # deterministic; sample counts gate the tracer itself (a sampling
    # or span-plumbing bug shows up as a collapsed count).
    "latency_e2e_p50_ms": True,
    "latency_e2e_p99_ms": True,
    "latency_catchup_lag_p99_ms": True,
    "latency_e2e_samples": False,
    "latency_catchup_samples": False,
}

#: Per-metric tolerance overrides.  The batching metrics and the
#: matcher's work counters (eval reduction, active signatures) are
#: deterministic, so the default 20% only absorbs deliberate retuning.
#: Anything wall-clock (events/sec and the speedup ratios derived from
#: it) swings with host load, so CI holds those loosely — they gate
#: order-of-magnitude collapses, not noise.
TOLERANCES = {name: 0.60 for name in HIGHER_IS_WORSE if "_eps_" in name}
TOLERANCES.update({name: 0.50 for name in HIGHER_IS_WORSE if "_speedup_" in name})
TOLERANCES["scalability_sim_events_per_wall_s"] = 0.60  # wall-clock
TOLERANCES["scalability_efficiency_smoke"] = 0.02       # deterministic
TOLERANCES["scale_sim_events_per_wall_s_100k"] = 0.60   # wall-clock
TOLERANCES["scale_bytes_per_subscriber"] = 0.20         # allocator-level
TOLERANCES["pfs_batch_appends_per_s"] = 0.60            # real file I/O


def measure() -> dict:
    base = run_message_amplification(0.0, duration_ms=DURATION_MS)
    batched = run_message_amplification(10.0, duration_ms=DURATION_MS)
    if not (base.exactly_once_ok and batched.exactly_once_ok):
        print("FATAL: exactly-once violated in smoke run", file=sys.stderr)
        sys.exit(2)
    if batched.events_delivered != base.events_delivered:
        print("FATAL: batching changed delivery count "
              f"({base.events_delivered} vs {batched.events_delivered})",
              file=sys.stderr)
        sys.exit(2)
    out = {
        "messages_per_event_window0": round(base.messages_per_event, 4),
        "messages_per_event_window10": round(batched.messages_per_event, 4),
        "reduction": round(base.messages_per_event / batched.messages_per_event, 4),
        "mean_batch_size_window10": round(batched.mean_batch_size, 4),
        "events_delivered": base.events_delivered,
    }
    out.update(measure_matching_metrics())
    out.update(measure_latency_metrics())
    out.update(measure_scalability_metrics())
    out.update(measure_scale_metrics())
    out.update(measure_pfs_micro_metrics())
    return out


def compare(baseline: dict, current: dict, out=None) -> list:
    """Compare ``current`` metrics against ``baseline``; return failures.

    Every gated metric (key of :data:`HIGHER_IS_WORSE`) must be present
    in *both* dicts — a key missing from the baseline means the gate was
    added without refreshing ``baseline.json``, and a key missing from
    the results means a measurement silently stopped producing it; both
    are hard failures with a per-metric message, never a crash or a
    silent skip.
    """
    out = out if out is not None else sys.stdout
    failures = []
    for name, higher_is_worse in HIGHER_IS_WORSE.items():
        old, new = baseline.get(name), current.get(name)
        if old is None:
            failures.append(f"{name}: missing from baseline (run --update)")
            continue
        if new is None:
            failures.append(f"{name}: missing from results (benchmark stopped producing it)")
            continue
        if old == 0:
            continue
        tolerance = TOLERANCES.get(name, TOLERANCE)
        change = (new - old) / abs(old)
        worse = change if higher_is_worse else -change
        marker = "REGRESSION" if worse > tolerance else "ok"
        print(f"{name:34s} baseline={old:<12} current={new:<12} "
              f"change={change:+.1%} [{marker} @ {tolerance:.0%}]", file=out)
        if worse > tolerance:
            failures.append(f"{name}: {old} -> {new} ({change:+.1%})")
    return failures


def main(argv) -> int:
    current = measure()
    if "--update" in argv:
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = compare(baseline, current)
    if failures:
        print("\nregressions beyond tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
